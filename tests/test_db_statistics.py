"""Unit tests for statistics and cardinality estimation."""

import pytest

from repro.db import algebra
from repro.db.expressions import BinaryOp, ColumnRef, Literal, equals
from repro.db.sqlparser import parse_sql
from repro.db.statistics import (
    DEFAULT_SELECTIVITY,
    StatisticsCatalog,
    TableStatistics,
)


class TestTableStatistics:
    def test_distinct_count_clamped_to_row_count(self):
        stats = TableStatistics(row_count=10, distinct={"a": 100})
        assert stats.distinct_count("a") == 10

    def test_distinct_count_defaults_to_row_count(self):
        stats = TableStatistics(row_count=10)
        assert stats.distinct_count("missing") == 10

    def test_distinct_count_strips_qualifier(self):
        stats = TableStatistics(row_count=10, distinct={"a": 4})
        assert stats.distinct_count("t.a") == 4

    def test_distinct_count_minimum_one(self):
        assert TableStatistics(row_count=0).distinct_count("a") == 1


class TestCardinalityEstimation:
    def test_scan_cardinality(self, simple_database):
        stats = simple_database.statistics
        assert stats.estimate_cardinality(algebra.Scan("employee")) == 6

    def test_equality_selection_uses_distinct(self, simple_database):
        stats = simple_database.statistics
        plan = algebra.Select(algebra.Scan("employee"), equals("dept_id", 1))
        # dept_id has 3 distinct non-null values.
        assert stats.estimate_cardinality(plan) == pytest.approx(6 / 3)

    def test_parameter_equality_treated_like_literal(self, simple_database):
        stats = simple_database.statistics
        plan = parse_sql("select * from employee where dept_id = ?")
        estimate = stats.estimate_cardinality(plan)
        assert estimate == pytest.approx(6 / 3)

    def test_range_selection(self, simple_database):
        stats = simple_database.statistics
        plan = algebra.Select(
            algebra.Scan("employee"),
            BinaryOp(">", ColumnRef("salary"), Literal(50)),
        )
        assert stats.estimate_cardinality(plan) == pytest.approx(6 / 3)

    def test_conjunction_multiplies_selectivities(self, simple_database):
        stats = simple_database.statistics
        plan = parse_sql(
            "select * from employee where dept_id = 1 and salary > 50"
        )
        expected = 6 * (1 / 3) * (1 / 3)
        assert stats.estimate_cardinality(plan) == pytest.approx(expected)

    def test_join_cardinality_uses_fk_distincts(self, simple_database):
        stats = simple_database.statistics
        plan = parse_sql(
            "select * from employee e join department d on e.dept_id = d.dept_id"
        )
        # 6 * 3 / max(3, 3) = 6
        assert stats.estimate_cardinality(plan) == pytest.approx(6.0)

    def test_scalar_aggregate_cardinality_is_one(self, simple_database):
        stats = simple_database.statistics
        plan = parse_sql("select count(*) from employee")
        assert stats.estimate_cardinality(plan) == 1.0

    def test_grouped_aggregate_cardinality(self, simple_database):
        stats = simple_database.statistics
        plan = parse_sql("select dept_id, count(*) from employee group by dept_id")
        assert 1.0 <= stats.estimate_cardinality(plan) <= 6.0

    def test_limit_caps_cardinality(self, simple_database):
        stats = simple_database.statistics
        plan = parse_sql("select * from employee limit 2")
        assert stats.estimate_cardinality(plan) == 2.0

    def test_unanalysed_table_has_zero_rows(self):
        from repro.db.schema import Schema

        catalog = StatisticsCatalog(Schema())
        assert catalog.estimate_cardinality(algebra.Scan("ghost")) == 0.0


class TestRowWidthAndServerTime:
    def test_scan_row_width_matches_schema(self, simple_database):
        stats = simple_database.statistics
        width = stats.estimate_row_width(algebra.Scan("employee"))
        assert width == simple_database.schema.table("employee").row_width

    def test_projection_row_width_is_smaller(self, simple_database):
        stats = simple_database.statistics
        plan = parse_sql("select name from employee")
        full = stats.estimate_row_width(algebra.Scan("employee"))
        projected = stats.estimate_row_width(plan)
        assert 0 < projected < full

    def test_join_row_width_is_sum(self, simple_database):
        stats = simple_database.statistics
        plan = parse_sql(
            "select * from employee e join department d on e.dept_id = d.dept_id"
        )
        expected = stats.estimate_row_width(
            algebra.Scan("employee")
        ) + stats.estimate_row_width(algebra.Scan("department"))
        assert stats.estimate_row_width(plan) == expected

    def test_pipelined_plan_has_fast_first_row(self, simple_database):
        stats = simple_database.statistics
        first, last = stats.estimate_server_time(algebra.Scan("employee"))
        assert first <= last
        assert first < last or last == first

    def test_blocking_plan_first_equals_last(self, simple_database):
        stats = simple_database.statistics
        plan = parse_sql("select * from employee order by salary")
        first, last = stats.estimate_server_time(plan)
        assert first == pytest.approx(last)

    def test_explicit_statistics_override(self, simple_database):
        simple_database.set_table_statistics(
            "employee",
            TableStatistics(row_count=1_000_000, distinct={"emp_id": 1_000_000}),
        )
        stats = simple_database.statistics
        assert stats.estimate_cardinality(algebra.Scan("employee")) == 1_000_000
        # Restore for other tests sharing the fixture instance.
        simple_database.analyze()
