"""Tests for parallel scatter-gather execution on the shard worker pool.

Covers the :class:`~repro.db.parallel.ShardExecutorPool` surface (modes,
deterministic error surfacing, stats, lifecycle), the packed table /
ColumnBatch payloads that cross the process boundary, the parallel ≡
serial scatter ≡ unsharded equivalence property across all three
execution tiers in thread and process modes (including theta-join /
unknown-function fallback plans and a shard whose predicate raises
mid-scatter), the sorted-run k-way merge at the gather node, out-of-order
partial-aggregate merging, counter accounting, the engine facade wiring
(``EngineBuilder.parallel``, ``Engine.stats()["sharding"]["parallel"]``,
CLI ``--workers``), and the parallel-scatter trace breakdown.
"""

from __future__ import annotations

import pickle

import pytest

from repro.api import Engine
from repro.db import algebra
from repro.db.database import Database
from repro.db.expressions import BinaryOp, ColumnRef, FunctionCall, Literal
from repro.db.parallel import (
    ParallelConfigError,
    ShardExecutorPool,
    pack_table,
    unpack_table,
)
from repro.db.schema import Column, ColumnType
from repro.db.sharding import _PartialAggregate
from repro.db.table import Table
from repro.db.vectorized import merge_sorted_runs

SHARDS = 4

QUERIES = [
    "select o_id, o_total from orders where o_total > 40",
    "select o_id, o_total from orders where o_total > 40 "
    "order by o_total desc, o_id",
    "select o_id, o_c_id, o_total from orders order by o_c_id, o_id desc",
    "select o_c_id, count(*) as n, sum(o_total) as s, avg(o_total) as a "
    "from orders group by o_c_id",
    "select count(*) as n, min(o_total) as lo, max(o_total) as hi "
    "from orders",
    "select o_id, c_tier from orders join customers on o_c_id = c_id "
    "where o_total > 60",
]


def build_database(
    shards: int = 0, mode: str = "vectorized", rows: int = 120
) -> Database:
    database = Database(execution_mode=mode)
    database.create_table(
        "orders",
        [
            Column("o_id", ColumnType.INT),
            Column("o_c_id", ColumnType.INT),
            Column("o_total", ColumnType.INT),
        ],
        primary_key="o_id",
    )
    database.create_table(
        "customers",
        [
            Column("c_id", ColumnType.INT),
            Column("c_tier", ColumnType.INT),
        ],
        primary_key="c_id",
    )
    database.insert(
        "orders",
        (
            {"o_id": i, "o_c_id": i % 10, "o_total": (i * 13) % 97}
            for i in range(rows)
        ),
    )
    database.insert(
        "customers",
        ({"c_id": i, "c_tier": i % 3} for i in range(10)),
    )
    if shards:
        database.shard_table("orders", "o_c_id", shards)
        database.shard_table("customers", "c_id", shards)
    database.analyze()
    return database


def row_key(row: dict) -> tuple:
    return tuple(sorted(row.items()))


def as_multiset(rows: list) -> list:
    return sorted(row_key(row) for row in rows)


# -- pool surface --------------------------------------------------------------


class TestShardExecutorPool:
    def test_rejects_unknown_mode_and_bad_worker_counts(self):
        with pytest.raises(ParallelConfigError):
            ShardExecutorPool(mode="fibers")
        with pytest.raises(ParallelConfigError):
            ShardExecutorPool(workers=0)

    def test_run_tasks_returns_results_in_task_order(self):
        pool = ShardExecutorPool(workers=3)
        results, seconds = pool.run_tasks(
            [lambda value=value: value * 10 for value in range(8)]
        )
        assert results == [value * 10 for value in range(8)]
        assert len(seconds) == 8 and all(s >= 0.0 for s in seconds)
        pool.close()

    def test_lowest_index_error_surfaces_once(self):
        pool = ShardExecutorPool(workers=3)

        def boom(index):
            raise ValueError(f"shard {index} broke")

        tasks = [
            lambda: [1],
            lambda: boom(1),
            lambda: boom(2),
            lambda: [4],
        ]
        with pytest.raises(ValueError, match="shard 1 broke"):
            pool.run_tasks(tasks)
        pool.close()

    def test_note_scatter_accumulates_max_not_sum(self):
        pool = ShardExecutorPool(workers=2)
        pool.note_scatter([0.5, 0.2, 0.3])
        stats = pool.stats()
        assert stats["scatters"] == 1
        assert stats["shard_seconds"] == pytest.approx(1.0)
        assert stats["parallel_seconds"] == pytest.approx(0.5)

    def test_close_is_idempotent_and_pool_recreates_lazily(self):
        pool = ShardExecutorPool(workers=2)
        results, _ = pool.run_tasks([lambda: 1, lambda: 2])
        pool.close()
        pool.close()
        results, _ = pool.run_tasks([lambda: 3, lambda: 4])
        assert results == [3, 4]
        pool.close()


# -- shipped payloads ----------------------------------------------------------


class TestPackedTables:
    def test_pack_table_round_trips_rows_index_and_columns(self):
        database = build_database()
        table = database.tables["orders"]
        rebuilt = unpack_table(
            pickle.loads(pickle.dumps(pack_table(table))), table.version
        )
        assert rebuilt.rows == table.rows
        assert rebuilt.schema.column_names == table.schema.column_names
        assert rebuilt.version == table.version
        assert rebuilt.lookup_pk(7) == table.lookup_pk(7)
        # The unpacked columns seed the columnar view: no re-encode on scan.
        assert rebuilt._columnar is not None

    def test_pack_table_preserves_nulls_and_strings(self):
        database = Database()
        database.create_table(
            "t",
            [
                Column("k", ColumnType.INT),
                Column("s", ColumnType.STRING),
                Column("v", ColumnType.INT),
            ],
            primary_key="k",
        )
        database.insert(
            "t",
            (
                {"k": i, "s": None if i % 3 == 0 else f"s{i % 4}", "v": None}
                for i in range(17)
            ),
        )
        table = database.tables["t"]
        rebuilt = unpack_table(
            pickle.loads(pickle.dumps(pack_table(table))), table.version
        )
        assert rebuilt.rows == table.rows


# -- parallel ≡ serial ≡ unsharded --------------------------------------------


@pytest.mark.parametrize("mode", ["vectorized", "compiled", "interpreted"])
@pytest.mark.parametrize("pool_mode", ["thread", "process"])
class TestParallelEquivalence:
    def test_queries_match_serial_and_unsharded(self, mode, pool_mode):
        unsharded = build_database(mode=mode)
        serial = build_database(shards=SHARDS, mode=mode)
        parallel = build_database(shards=SHARDS, mode=mode)
        parallel.set_parallel(workers=2, mode=pool_mode)
        try:
            for sql in QUERIES:
                reference = unsharded.execute_sql(sql).rows
                serial_rows = serial.execute_sql(sql).rows
                parallel_rows = parallel.execute_sql(sql).rows
                # Serial scatter order is the contract; parallel must
                # reproduce it exactly, not just as a multiset.
                assert parallel_rows == serial_rows, sql
                if "order by" in sql:
                    assert parallel_rows == reference, sql
                else:
                    assert as_multiset(parallel_rows) == as_multiset(
                        reference
                    ), sql
        finally:
            parallel.close_parallel()

    def test_theta_join_fallback_plan_stays_exact(self, mode, pool_mode):
        # Orders sharded, customers broadcast: the theta join scatters with
        # no vectorized lowering (row-tier per shard under the pool).
        reference = build_database(mode="interpreted")
        parallel = build_database(mode=mode)
        parallel.shard_table("orders", "o_c_id", SHARDS)
        parallel.set_parallel(workers=2, mode=pool_mode)
        plan = algebra.Join(
            algebra.Scan("orders", "o"),
            algebra.Scan("customers", "c"),
            BinaryOp("<", ColumnRef("o_c_id", "o"), ColumnRef("c_id", "c")),
        )
        try:
            rows = parallel.execute_plan(plan).rows
            expected = reference.execute_plan(plan).rows
            assert as_multiset(rows) == as_multiset(expected)
            assert parallel.sharding_stats()["scatter"] == 1
        finally:
            parallel.close_parallel()

    def test_unknown_function_raises_identically_once(self, mode, pool_mode):
        reference = build_database(mode="interpreted")
        parallel = build_database(shards=SHARDS, mode=mode)
        parallel.set_parallel(workers=2, mode=pool_mode)
        plan = algebra.Project(
            algebra.Scan("orders"),
            (
                algebra.OutputColumn(
                    FunctionCall("no_such_function", (ColumnRef("o_id"),)),
                    "out",
                ),
            ),
        )
        try:
            with pytest.raises(Exception) as parallel_error:
                parallel.execute_plan(plan)
            with pytest.raises(Exception) as reference_error:
                reference.execute_plan(plan)
            assert str(parallel_error.value) == str(reference_error.value)
            # The failed scatter leaves the counters consistent: stats
            # surfaces stay readable and non-negative.
            stats = parallel.execution_stats()
            assert all(count >= 0 for count in stats["tiers"].values())
            assert parallel.sharding_stats()["parallel"]["mode"] == pool_mode
        finally:
            parallel.close_parallel()

    def test_error_on_one_shard_surfaces_once(self, mode, pool_mode):
        # 1 / (o_c_id - 3) raises only for rows with o_c_id == 3, which all
        # hash to a single shard; the other shards complete fine.
        serial = build_database(shards=SHARDS, mode=mode)
        parallel = build_database(shards=SHARDS, mode=mode)
        parallel.set_parallel(workers=2, mode=pool_mode)
        plan = algebra.Project(
            algebra.Scan("orders"),
            (
                algebra.OutputColumn(
                    BinaryOp(
                        "/",
                        Literal(1),
                        BinaryOp("-", ColumnRef("o_c_id"), Literal(3)),
                    ),
                    "out",
                ),
            ),
        )
        try:
            with pytest.raises(Exception) as serial_error:
                serial.execute_plan(plan)
            with pytest.raises(Exception) as parallel_error:
                parallel.execute_plan(plan)
            assert type(parallel_error.value) is type(serial_error.value)
            assert str(parallel_error.value) == str(serial_error.value)
        finally:
            parallel.close_parallel()


class TestParallelAccounting:
    def test_thread_scatter_counts_every_shard_execution(self):
        serial = build_database(shards=SHARDS)
        parallel = build_database(shards=SHARDS)
        parallel.set_parallel(workers=2, mode="thread")
        sql = "select o_id from orders where o_total > 40"
        try:
            serial.execute_sql(sql)
            parallel.execute_sql(sql)
            serial_tiers = serial.execution_stats()["tiers"]
            parallel_tiers = parallel.execution_stats()["tiers"]
            assert sum(parallel_tiers.values()) == sum(serial_tiers.values())
            stats = parallel.sharding_stats()["parallel"]
            assert stats["scatters"] == 1
            assert stats["mode"] == "thread"
            assert stats["parallel_seconds"] <= stats["shard_seconds"]
        finally:
            parallel.close_parallel()

    def test_process_scatter_folds_worker_counter_deltas(self):
        serial = build_database(shards=SHARDS)
        parallel = build_database(shards=SHARDS)
        parallel.set_parallel(workers=2, mode="process")
        sql = "select o_id from orders where o_total > 40"
        try:
            serial.execute_sql(sql)
            parallel.execute_sql(sql)
            assert (
                parallel.execution_stats()["tiers"]
                == serial.execution_stats()["tiers"]
            )
            stats = parallel.sharding_stats()["parallel"]
            assert stats["pickle_bytes"]["sent"] > 0
            assert stats["pickle_bytes"]["received"] > 0
            assert stats["degraded"] == 0
        finally:
            parallel.close_parallel()

    def test_process_workers_cache_shard_payloads(self):
        parallel = build_database(shards=SHARDS)
        parallel.set_parallel(workers=2, mode="process")
        sql = "select o_id from orders where o_total > 40"
        try:
            parallel.execute_sql(sql)
            first = parallel._router.last_parallel["pickle_bytes"]["sent"]
            parallel.execute_sql(sql)
            second = parallel._router.last_parallel["pickle_bytes"]["sent"]
            # Steady state ships only the plan blobs, not the shard data.
            assert second < first
        finally:
            parallel.close_parallel()

    def test_serial_mode_never_builds_a_pool(self):
        database = build_database(shards=SHARDS)
        database.set_parallel(mode="serial")
        database.execute_sql("select o_id from orders where o_total > 40")
        assert database.sharding_stats()["parallel"] == {
            "mode": "serial",
            "workers": 1,
            "scatters": 0,
        }


# -- sorted-run merge ----------------------------------------------------------


class TestSortedRunMerge:
    def test_merge_sorted_runs_matches_sorted_concat(self):
        runs = [
            [{"k": 1, "run": 0}, {"k": 3, "run": 0}, {"k": 5, "run": 0}],
            [{"k": 1, "run": 1}, {"k": 2, "run": 1}],
            [],
            [{"k": 4, "run": 3}],
        ]
        merged = merge_sorted_runs(runs, key=lambda row: row["k"])
        expected = sorted(
            (row for run in runs for row in run), key=lambda row: row["k"]
        )
        # Stable: ties keep run (= shard) order, like concat-then-sort.
        assert merged == expected

    def test_parallel_sort_is_row_identical_including_ties(self):
        # o_c_id repeats every 10 orders: lots of ties on the first key.
        unsharded = build_database()
        serial = build_database(shards=SHARDS)
        parallel = build_database(shards=SHARDS)
        parallel.set_parallel(workers=2, mode="thread")
        sql = (
            "select o_id, o_c_id, o_total from orders "
            "order by o_c_id, o_total desc, o_id"
        )
        try:
            expected = unsharded.execute_sql(sql).rows
            assert serial.execute_sql(sql).rows == expected
            assert parallel.execute_sql(sql).rows == expected
        finally:
            parallel.close_parallel()

    def test_descending_tie_order_matches_serial(self):
        serial = build_database(shards=SHARDS)
        parallel = build_database(shards=SHARDS)
        parallel.set_parallel(workers=2, mode="thread")
        sql = "select o_id, o_c_id from orders order by o_c_id desc"
        try:
            assert (
                parallel.execute_sql(sql).rows == serial.execute_sql(sql).rows
            )
        finally:
            parallel.close_parallel()


# -- out-of-order partial-aggregate merge --------------------------------------


class TestMergeIndexed:
    def make_partial(self) -> _PartialAggregate:
        aggregate = algebra.Aggregate(
            algebra.Scan("orders"),
            (ColumnRef("o_c_id"),),
            (
                algebra.AggregateSpec("count", None, "n"),
                algebra.AggregateSpec("sum", ColumnRef("o_total"), "s"),
                algebra.AggregateSpec("avg", ColumnRef("o_total"), "a"),
            ),
        )
        return _PartialAggregate(aggregate)

    def shard_partials(self) -> list:
        database = build_database(shards=SHARDS)
        partial = self.make_partial()
        router = database._executor.router
        runs = []
        for index in range(SHARDS):
            executor = router._shard_executor(frozenset({"orders"}), index)
            runs.append(executor.execute(partial.plan))
        return partial, runs

    def test_out_of_order_merge_equals_in_order_merge(self):
        partial, runs = self.shard_partials()
        in_order = partial.merge(
            [row for run in runs for row in run]
        )
        shuffled = [(3, runs[3]), (1, runs[1]), (0, runs[0]), (2, runs[2])]
        assert partial.merge_indexed(shuffled) == in_order

    def test_group_emission_keeps_first_encounter_order(self):
        partial, runs = self.shard_partials()
        in_order = partial.merge([row for run in runs for row in run])
        reversed_pairs = list(enumerate(runs))[::-1]
        merged = partial.merge_indexed(reversed_pairs)
        assert [row["o_c_id"] for row in merged] == [
            row["o_c_id"] for row in in_order
        ]


# -- engine facade and CLI -----------------------------------------------------


class TestEngineFacade:
    def make_engine(self, **parallel) -> Engine:
        return (
            Engine.builder()
            .orders_workload(num_orders=200, num_customers=20)
            .shards(4)
            .parallel(**parallel)
            .build()
        )

    def test_builder_parallel_surfaces_in_stats(self):
        engine = self.make_engine(workers=2)
        connection = engine.connect()
        connection.execute_query("select * from orders where o_quantity > 2")
        stats = engine.stats()["sharding"]["parallel"]
        assert stats["mode"] == "thread"
        assert stats["workers"] == 2
        assert stats["scatters"] >= 1
        engine.close()

    def test_engine_close_shuts_the_pool_down(self):
        engine = self.make_engine(workers=2)
        connection = engine.connect()
        connection.execute_query("select * from orders where o_quantity > 2")
        router = engine.database._router
        assert router._pool._threads is not None
        engine.close()
        assert router._pool._threads is None

    def test_builder_serial_mode_keeps_the_baseline(self):
        engine = self.make_engine(mode="serial")
        connection = engine.connect()
        connection.execute_query("select * from orders where o_quantity > 2")
        assert engine.stats()["sharding"]["parallel"]["mode"] == "serial"
        engine.close()

    def test_cli_workers_flag_configures_the_pool(self, tmp_path):
        import io

        from repro.cli import main
        from repro.workloads.programs import P0_SOURCE

        program = tmp_path / "program.py"
        program.write_text(P0_SOURCE)
        out = io.StringIO()
        code = main(
            [
                "optimize",
                str(program),
                "--scale",
                "200",
                "--shards",
                "4",
                "--workers",
                "2",
            ],
            out=out,
        )
        assert code == 0


# -- tracing -------------------------------------------------------------------


class TestParallelScatterTracing:
    def make_engine(self) -> Engine:
        return (
            Engine.builder()
            .orders_workload(num_orders=200, num_customers=20)
            .shards(4)
            .parallel(workers=2)
            .tracing()
            .build()
        )

    def test_route_span_carries_the_parallel_breakdown(self):
        engine = self.make_engine()
        connection = engine.connect()
        connection.execute_query("select * from orders where o_quantity > 2")
        trace = engine.tracer.traces[-1]
        trace.check_accounting()  # informational sub-spans don't disturb it
        route = trace.find("route")
        assert route is not None
        (span,) = [c for c in route.children if c.name == "parallel"]
        assert span.attributes["mode"] == "thread"
        assert span.attributes["workers"] == 2
        shard_spans = [c for c in span.children if c.name.startswith("shard-")]
        assert len(shard_spans) == 4
        # Max-not-sum: the parallel span charges the slowest shard's wall.
        assert span.duration == pytest.approx(
            max(child.duration for child in shard_spans)
        )
        assert span.duration <= sum(child.duration for child in shard_spans)
        engine.close()

    def test_serial_scatter_has_no_parallel_span(self):
        engine = (
            Engine.builder()
            .orders_workload(num_orders=200, num_customers=20)
            .shards(4)
            .tracing()
            .build()
        )
        connection = engine.connect()
        connection.execute_query("select * from orders where o_quantity > 2")
        route = engine.tracer.traces[-1].find("route")
        assert route is not None
        assert all(child.name != "parallel" for child in route.children)
        engine.close()
