"""Unit tests for the plan executor (against the department/employee fixture)."""

import pytest

from repro.db import algebra
from repro.db.executor import ExecutionError, Executor
from repro.db.expressions import BinaryOp, ColumnRef, Literal, equals


@pytest.fixture()
def executor(simple_database):
    return Executor(simple_database.tables)


class TestScanSelectProject:
    def test_scan_returns_all_rows_with_qualified_keys(self, executor):
        rows = executor.execute(algebra.Scan("employee", "e"))
        assert len(rows) == 6
        assert rows[0]["e.emp_id"] == rows[0]["emp_id"]

    def test_scan_unknown_table(self, executor):
        with pytest.raises(ExecutionError, match="unknown table"):
            executor.execute(algebra.Scan("nope"))

    def test_select_filters(self, executor):
        plan = algebra.Select(
            algebra.Scan("employee"),
            BinaryOp(">", ColumnRef("salary"), Literal(65)),
        )
        rows = executor.execute(plan)
        assert sorted(r["name"] for r in rows) == ["ann", "bob", "carol"]

    def test_project_computes_expressions(self, executor):
        plan = algebra.Project(
            algebra.Scan("employee"),
            (
                algebra.OutputColumn(ColumnRef("name"), "name"),
                algebra.OutputColumn(
                    BinaryOp("*", ColumnRef("salary"), Literal(2)), "double_salary"
                ),
            ),
        )
        rows = executor.execute(plan)
        assert rows[0].keys() == {"name", "double_salary"}
        by_name = {r["name"]: r["double_salary"] for r in rows}
        assert by_name["ann"] == 180.0


class TestJoins:
    def test_hash_join_on_equality(self, executor):
        plan = algebra.Join(
            algebra.Scan("employee", "e"),
            algebra.Scan("department", "d"),
            BinaryOp("=", ColumnRef("dept_id", "e"), ColumnRef("dept_id", "d")),
        )
        rows = executor.execute(plan)
        # frank has a NULL dept_id and must not join.
        assert len(rows) == 5
        eng = [r for r in rows if r["dept_name"] == "eng"]
        assert sorted(r["name"] for r in eng) == ["ann", "bob"]

    def test_join_output_has_both_sides_qualified(self, executor):
        plan = algebra.Join(
            algebra.Scan("employee", "e"),
            algebra.Scan("department", "d"),
            BinaryOp("=", ColumnRef("dept_id", "e"), ColumnRef("dept_id", "d")),
        )
        row = executor.execute(plan)[0]
        assert "e.name" in row and "d.dept_name" in row

    def test_cross_join(self, executor):
        plan = algebra.Join(
            algebra.Scan("employee"), algebra.Scan("department"), None
        )
        assert len(executor.execute(plan)) == 6 * 3

    def test_theta_join_falls_back_to_nested_loops(self, executor):
        plan = algebra.Join(
            algebra.Scan("employee", "e"),
            algebra.Scan("department", "d"),
            BinaryOp(">", ColumnRef("salary", "e"), ColumnRef("budget", "d")),
        )
        rows = executor.execute(plan)
        assert all(r["e.salary"] > r["d.budget"] for r in rows)
        assert len(rows) > 0

    def test_equi_join_swapped_condition_sides(self, executor):
        plan = algebra.Join(
            algebra.Scan("employee", "e"),
            algebra.Scan("department", "d"),
            BinaryOp("=", ColumnRef("dept_id", "d"), ColumnRef("dept_id", "e")),
        )
        assert len(executor.execute(plan)) == 5


class TestAggregation:
    def test_scalar_aggregates(self, executor):
        plan = algebra.Aggregate(
            algebra.Scan("employee"),
            (),
            (
                algebra.AggregateSpec("count", None, "n"),
                algebra.AggregateSpec("sum", ColumnRef("salary"), "total"),
                algebra.AggregateSpec("min", ColumnRef("age"), "youngest"),
                algebra.AggregateSpec("max", ColumnRef("age"), "oldest"),
                algebra.AggregateSpec("avg", ColumnRef("salary"), "mean"),
            ),
        )
        (row,) = executor.execute(plan)
        assert row["n"] == 6
        assert row["total"] == pytest.approx(395.0)
        assert row["youngest"] == 23 and row["oldest"] == 52
        assert row["mean"] == pytest.approx(395.0 / 6)

    def test_grouped_aggregate(self, executor):
        plan = algebra.Aggregate(
            algebra.Scan("employee"),
            (ColumnRef("dept_id"),),
            (algebra.AggregateSpec("count", None, "n"),),
        )
        rows = executor.execute(plan)
        by_dept = {r["dept_id"]: r["n"] for r in rows}
        assert by_dept[1] == 2 and by_dept[2] == 2 and by_dept[3] == 1
        assert by_dept[None] == 1

    def test_count_column_ignores_nulls(self, executor):
        plan = algebra.Aggregate(
            algebra.Scan("employee"),
            (),
            (algebra.AggregateSpec("count", ColumnRef("dept_id"), "n"),),
        )
        (row,) = executor.execute(plan)
        assert row["n"] == 5

    def test_aggregate_over_empty_input(self, executor):
        plan = algebra.Aggregate(
            algebra.Select(
                algebra.Scan("employee"), equals("name", "nobody")
            ),
            (),
            (
                algebra.AggregateSpec("sum", ColumnRef("salary"), "total"),
                algebra.AggregateSpec("count", None, "n"),
            ),
        )
        (row,) = executor.execute(plan)
        assert row["n"] == 0 and row["total"] is None


class TestSortLimit:
    def test_sort_ascending_descending(self, executor):
        plan = algebra.Sort(
            algebra.Scan("employee"),
            (algebra.SortKey(ColumnRef("salary"), ascending=False),),
        )
        rows = executor.execute(plan)
        salaries = [r["salary"] for r in rows]
        assert salaries == sorted(salaries, reverse=True)

    def test_multi_key_sort(self, executor):
        plan = algebra.Sort(
            algebra.Scan("employee"),
            (
                algebra.SortKey(ColumnRef("dept_id")),
                algebra.SortKey(ColumnRef("salary"), ascending=False),
            ),
        )
        rows = executor.execute(plan)
        with_dept = [r for r in rows if r["dept_id"] == 1]
        assert [r["name"] for r in with_dept] == ["ann", "bob"]

    def test_sort_handles_nulls(self, executor):
        plan = algebra.Sort(
            algebra.Scan("employee"), (algebra.SortKey(ColumnRef("dept_id")),)
        )
        rows = executor.execute(plan)
        assert rows[0]["dept_id"] is None

    def test_limit(self, executor):
        plan = algebra.Limit(algebra.Scan("employee"), 2)
        assert len(executor.execute(plan)) == 2

    def test_limit_zero(self, executor):
        assert executor.execute(algebra.Limit(algebra.Scan("employee"), 0)) == []


class TestJoinFixes:
    """Hash-join build skipping and side-resolution robustness."""

    def test_empty_probe_side_skips_right_side_entirely(self, simple_database):
        executor = Executor(simple_database.tables, compiled=False)
        scanned = []
        original_scan = Executor._scan

        def recording_scan(self, plan):
            scanned.append(plan.table)
            return original_scan(self, plan)

        Executor._scan = recording_scan
        try:
            plan = algebra.Join(
                algebra.Select(
                    algebra.Scan("employee", "e"), equals("name", "nobody", "e")
                ),
                algebra.Scan("department", "d"),
                BinaryOp(
                    "=", ColumnRef("dept_id", "e"), ColumnRef("dept_id", "d")
                ),
            )
            assert executor.execute(plan) == []
        finally:
            Executor._scan = original_scan
        # The probe (left) side produced no rows, so the build (right) side
        # must never have been executed, let alone hashed.
        assert scanned == ["employee"]

    def test_empty_probe_never_builds_table_index(self, simple_database):
        from repro.db.table import Table

        executor = Executor(simple_database.tables, compiled=True)
        built = []
        original_index_for = Table.index_for

        def recording_index_for(self, column):
            built.append((self.schema.name, column))
            return original_index_for(self, column)

        Table.index_for = recording_index_for
        try:
            plan = algebra.Join(
                algebra.Select(
                    algebra.Scan("employee", "e"), equals("name", "nobody", "e")
                ),
                algebra.Scan("department", "d"),
                BinaryOp(
                    "=", ColumnRef("dept_id", "e"), ColumnRef("dept_id", "d")
                ),
            )
            assert executor.execute(plan) == []
        finally:
            Table.index_for = original_index_for
        assert built == []

    @pytest.mark.parametrize("compiled", [False, True])
    def test_condition_sides_resolve_against_both_samples(
        self, simple_database, compiled
    ):
        # The equi condition names the right side first; orientation must be
        # derived from both sides' shapes, not just the first left row.
        executor = Executor(simple_database.tables, compiled=compiled)
        plan = algebra.Join(
            algebra.Scan("department", "d"),
            algebra.Scan("employee", "e"),
            BinaryOp("=", ColumnRef("dept_id", "e"), ColumnRef("dept_id", "d")),
        )
        rows = executor.execute(plan)
        assert len(rows) == 5
        assert all(r["e.dept_id"] == r["d.dept_id"] for r in rows)

    def test_index_join_matches_hash_join(self, simple_database):
        plan = algebra.Join(
            algebra.Scan("employee", "e"),
            algebra.Scan("department", "d"),
            BinaryOp("=", ColumnRef("dept_id", "e"), ColumnRef("dept_id", "d")),
        )
        compiled = Executor(simple_database.tables, compiled=True)
        interpreted = Executor(simple_database.tables, compiled=False)
        assert compiled.execute(plan) == interpreted.execute(plan)

    def test_index_join_sees_fresh_rows_after_insert(self):
        from repro.db.database import Database
        from repro.db.schema import Column, ColumnType

        database = Database()
        database.create_table(
            "parent",
            [Column("pid", ColumnType.INT), Column("label", ColumnType.STRING)],
            primary_key="pid",
        )
        database.create_table(
            "child",
            [Column("cid", ColumnType.INT), Column("pid", ColumnType.INT)],
            primary_key="cid",
        )
        database.insert("parent", [{"pid": 1, "label": "a"}])
        database.insert("child", [{"cid": 1, "pid": 1}])
        plan = algebra.Join(
            algebra.Scan("child", "c"),
            algebra.Scan("parent", "p"),
            BinaryOp("=", ColumnRef("pid", "c"), ColumnRef("pid", "p")),
        )
        executor = Executor(database.tables, compiled=True)
        assert len(executor.execute(plan)) == 1
        # A mutation must invalidate the cached secondary index.
        database.insert("parent", [{"pid": 2, "label": "b"}])
        database.insert("child", [{"cid": 2, "pid": 2}])
        assert len(executor.execute(plan)) == 2


class TestJoinErrorAndCacheBehaviour:
    @pytest.mark.parametrize("compiled", [False, True])
    def test_unknown_right_table_raises_even_with_empty_probe(
        self, simple_database, compiled
    ):
        executor = Executor(simple_database.tables, compiled=compiled)
        plan = algebra.Join(
            algebra.Select(
                algebra.Scan("employee", "e"), equals("name", "nobody", "e")
            ),
            algebra.Scan("missing", "m"),
            BinaryOp("=", ColumnRef("dept_id", "e"), ColumnRef("id", "m")),
        )
        with pytest.raises(ExecutionError, match="unknown table"):
            executor.execute(plan)

    def test_compile_cache_is_bounded(self, simple_database):
        executor = Executor(simple_database.tables, compiled=True)
        # Predicates above a join are not scan-fused, so each distinct
        # literal lands in the shared compile cache; it must stay bounded.
        join = algebra.Join(
            algebra.Scan("employee", "e"),
            algebra.Scan("department", "d"),
            BinaryOp("=", ColumnRef("dept_id", "e"), ColumnRef("dept_id", "d")),
        )
        for value in range(Executor.COMPILE_CACHE_LIMIT + 10):
            plan = algebra.Select(
                join, BinaryOp("=", ColumnRef("salary", "e"), Literal(value))
            )
            executor.execute(plan)
        assert len(executor._compile_cache) <= Executor.COMPILE_CACHE_LIMIT
