"""Unit tests for program regions and region analysis."""

import ast

import pytest

from repro.core.region_analysis import AnalysisError, analyze_program
from repro.core.regions import (
    BasicBlockRegion,
    ConditionalRegion,
    FunctionRegion,
    LoopRegion,
    SequentialRegion,
    count_regions,
    iter_cursor_loops,
)
from repro.workloads.programs import M0_SOURCE, P0_SOURCE, P2_SOURCE
from repro.workloads import tpcds


SIMPLE = """
def f(rt):
    total = 0
    for row in rt.execute_query("select * from t"):
        if row["x"] > 2:
            total = total + row["x"]
    return total
"""


class TestRegionTreeConstruction:
    def test_function_region_structure(self):
        info = analyze_program(SIMPLE)
        assert isinstance(info.region, FunctionRegion)
        assert info.region.name == "f"
        assert info.parameters == ["rt"]

    def test_region_kinds_counted(self):
        info = analyze_program(SIMPLE)
        counts = count_regions(info.region)
        assert counts["function"] == 1
        assert counts["loop"] == 1
        assert counts["cond"] == 1
        assert counts["block"] >= 3

    def test_paper_example_p0_regions(self, registry):
        info = analyze_program(P0_SOURCE, registry=registry)
        counts = count_regions(info.region)
        # Figure 5: one outer sequential region, one loop, basic blocks inside.
        assert counts["loop"] == 1
        assert counts["seq"] >= 1

    def test_cursor_loop_detection_sql(self):
        info = analyze_program(SIMPLE)
        loops = info.cursor_loops()
        assert len(loops) == 1
        assert loops[0].query.kind == "sql"
        assert loops[0].query.sql == "select * from t"

    def test_cursor_loop_detection_orm(self, registry):
        info = analyze_program(P0_SOURCE, registry=registry)
        loop = info.cursor_loops()[0]
        assert loop.query.kind == "load_all"
        assert loop.query.entity == "Order"
        assert loop.query.table == "orders"
        assert loop.is_cursor_loop

    def test_lazy_load_detected_in_loop_body(self, registry):
        info = analyze_program(P0_SOURCE, registry=registry)
        loop = info.cursor_loops()[0]
        lazy = [
            q
            for block in loop.body.walk()
            if isinstance(block, BasicBlockRegion)
            for q in block.queries
            if q.kind == "lazy_load"
        ]
        assert len(lazy) == 1
        assert lazy[0].table == "customer"
        assert lazy[0].key_column == "c_customer_sk"
        assert lazy[0].source_column == "o_customer_sk"

    def test_prefetch_and_lookup_detected(self, registry):
        info = analyze_program(P2_SOURCE, registry=registry)
        kinds = [
            q.kind
            for region in info.region.walk()
            if isinstance(region, BasicBlockRegion)
            for q in region.queries
        ]
        assert "prefetch" in kinds
        loop = info.cursor_loops()[0]
        loop_kinds = [
            q.kind
            for region in loop.body.walk()
            if isinstance(region, BasicBlockRegion)
            for q in region.queries
        ]
        assert "lookup" in loop_kinds

    def test_while_loop_is_not_a_cursor_loop(self):
        source = """
def f(rt):
    n = 0
    while n < 10:
        n = n + 1
    return n
"""
        info = analyze_program(source)
        loops = [r for r in info.region.walk() if isinstance(r, LoopRegion)]
        assert len(loops) == 1
        assert not loops[0].is_cursor_loop

    def test_missing_function_raises(self):
        with pytest.raises(AnalysisError, match="no function"):
            analyze_program("x = 1")

    def test_named_function_selection(self):
        source = "def a(rt):\n    return 1\n\ndef b(rt):\n    return 2\n"
        assert analyze_program(source, function_name="b").name == "b"
        with pytest.raises(AnalysisError):
            analyze_program(source, function_name="c")

    def test_syntax_error_raises(self):
        with pytest.raises(AnalysisError, match="cannot parse"):
            analyze_program("def f(:\n  pass")


class TestRegionSourceRoundTrip:
    def test_to_source_is_executable(self):
        info = analyze_program(SIMPLE)
        source = info.region.to_source()
        namespace = {}
        exec(compile(source, "<region>", "exec"), namespace)
        assert "f" in namespace

    def test_statement_counts(self):
        info = analyze_program(SIMPLE)
        assert info.region.statement_count() >= 4

    def test_conditional_with_else(self):
        source = """
def g(rt):
    if rt:
        x = 1
    else:
        x = 2
    return x
"""
        info = analyze_program(source)
        cond = [r for r in info.region.walk() if isinstance(r, ConditionalRegion)]
        assert len(cond) == 1
        assert cond[0].else_region is not None
        assert "else:" in cond[0].to_source()

    def test_iter_cursor_loops_helper(self, registry):
        info = analyze_program(P0_SOURCE, registry=registry)
        assert len(list(iter_cursor_loops(info.region))) == 1

    def test_m0_dependent_aggregation_program(self):
        info = analyze_program(M0_SOURCE)
        loop = info.cursor_loops()[0]
        assert "order by month" in loop.query.sql
