"""Tests for the hash-sharded storage layer and the shard router.

Covers the :class:`~repro.db.sharding.ShardedTable` storage surface (the
inherited aggregate view must behave exactly like an unsharded table, with
rows additionally filed in their hash partitions), the three routing
classes (single-shard routed / shard-local parallel / scatter-gather) with
their counters, partial-aggregate merging, statistics aggregation, the
shard-aware prepared point-lookup fast path, and the engine-facade
configuration (``EngineBuilder.shards`` and ``Engine.stats()["sharding"]``).
"""

from __future__ import annotations

import pytest

from repro.api import Engine
from repro.db import algebra
from repro.db.database import Database
from repro.db.expressions import BinaryOp, ColumnRef, FunctionCall, Literal
from repro.db.schema import Column, ColumnType, SchemaError
from repro.db.sharding import ShardedTable, ShardingError, shard_index
from repro.db.table import Table


def make_schema():
    from repro.db.schema import TableSchema

    return TableSchema(
        "items",
        [
            Column("id", ColumnType.INT),
            Column("bucket", ColumnType.INT),
            Column("label", ColumnType.STRING, width=12),
        ],
        primary_key="id",
    )


def make_sharded(shards: int = 4, rows: int = 40) -> ShardedTable:
    table = ShardedTable(make_schema(), "id", shards)
    table.insert_many(
        {"id": i, "bucket": i % 5, "label": f"item-{i}"} for i in range(rows)
    )
    return table


def build_database(shards: int = 0, mode: str = "vectorized") -> Database:
    database = Database(execution_mode=mode)
    database.create_table(
        "orders",
        [
            Column("o_id", ColumnType.INT),
            Column("o_c_id", ColumnType.INT),
            Column("o_total", ColumnType.INT),
        ],
        primary_key="o_id",
    )
    database.create_table(
        "customers",
        [
            Column("c_id", ColumnType.INT),
            Column("c_tier", ColumnType.INT),
        ],
        primary_key="c_id",
    )
    database.insert(
        "orders",
        (
            {"o_id": i, "o_c_id": i % 10, "o_total": (i * 13) % 97}
            for i in range(120)
        ),
    )
    database.insert(
        "customers",
        ({"c_id": i, "c_tier": i % 3} for i in range(10)),
    )
    if shards:
        database.shard_table("orders", "o_c_id", shards)
        database.shard_table("customers", "c_id", shards)
    database.analyze()
    return database


class TestShardedTableStorage:
    def test_rows_keep_global_insertion_order(self):
        table = make_sharded()
        assert [row["id"] for row in table.rows] == list(range(40))
        assert [row["id"] for row in table.scan()] == list(range(40))

    def test_rows_are_partitioned_by_hash_of_the_shard_key(self):
        table = make_sharded()
        for index, shard in enumerate(table.shards):
            for row in shard.rows:
                assert shard_index(row["id"], table.shard_count) == index
        assert sum(table.shard_row_counts()) == len(table)

    def test_partitions_share_the_stored_row_dicts(self):
        table = make_sharded()
        aggregate_ids = {id(row) for row in table.rows}
        shard_ids = {
            id(row) for shard in table.shards for row in shard.rows
        }
        assert shard_ids == aggregate_ids

    def test_update_is_visible_through_shard_partitions(self):
        table = make_sharded()
        updated = table.update_rows(
            lambda row: row["id"] == 7, {"label": "renamed"}
        )
        assert updated == 1
        shard = table.shard_for(7)
        assert any(row["label"] == "renamed" for row in shard.rows)

    def test_update_moving_the_shard_key_rehomes_the_row(self):
        table = make_sharded(shards=3)
        table.update_rows(lambda row: row["id"] == 5, {"id": 1005})
        assert table.lookup_pk(5) is None
        assert table.lookup_pk(1005)["label"] == "item-5"
        home = table.shard_for(1005)
        assert any(row["id"] == 1005 for row in home.rows)
        for index, shard in enumerate(table.shards):
            for row in shard.rows:
                assert table.shard_index(row["id"]) == index

    def test_clear_empties_every_partition(self):
        table = make_sharded()
        table.clear()
        assert len(table) == 0
        assert all(len(shard) == 0 for shard in table.shards)

    def test_lookup_pk_and_index_for_match_unsharded(self):
        table = make_sharded()
        plain = Table(make_schema())
        plain.insert_many(
            {"id": i, "bucket": i % 5, "label": f"item-{i}"} for i in range(40)
        )
        assert table.lookup_pk(11) == plain.lookup_pk(11)
        assert table.index_for("bucket").keys() == plain.index_for("bucket").keys()
        assert table.columns() == plain.columns()
        assert table.distinct_count("bucket") == plain.distinct_count("bucket")

    def test_unknown_shard_key_raises(self):
        with pytest.raises(SchemaError):
            ShardedTable(make_schema(), "nope", 2)

    def test_invalid_shard_count_raises(self):
        with pytest.raises(ShardingError):
            ShardedTable(make_schema(), "id", 0)

    def test_none_and_unhashable_values_route_to_shard_zero(self):
        assert shard_index(None, 8) == 0
        assert shard_index([1, 2], 8) == 0


class TestDatabaseSharding:
    def test_shard_table_preserves_rows_and_order(self):
        unsharded = build_database()
        sharded = build_database(shards=4)
        # The aggregate view keeps global insertion order ...
        assert list(sharded.table("orders").scan()) == list(
            unsharded.table("orders").scan()
        )
        # ... and a sorted query is row-identical end to end.
        sql = "select * from orders order by o_id"
        assert (
            sharded.execute_sql(sql).rows == unsharded.execute_sql(sql).rows
        )

    def test_shard_table_requires_existing_table(self):
        database = build_database()
        with pytest.raises(KeyError):
            database.shard_table("nope", "x", 2)

    def test_shard_table_twice_raises(self):
        database = build_database(shards=2)
        with pytest.raises(ValueError):
            database.shard_table("orders", "o_c_id", 2)

    def test_shard_key_defaults_to_primary_key(self):
        database = build_database()
        sharded = database.shard_table("orders", shards=3)
        assert sharded.shard_key == "o_id"

    def test_point_query_on_shard_key_routes_to_one_shard(self):
        database = build_database(shards=4)
        rows = database.execute_sql(
            "select o_id, o_total from orders where o_c_id = 3 order by o_id"
        ).rows
        assert [row["o_id"] for row in rows] == [i for i in range(120) if i % 10 == 3]
        assert database.sharding_stats()["routed"] == 1

    def test_parameter_slot_routes_per_execution(self):
        database = build_database(shards=4)
        statement = database.prepare(
            "select o_id from orders where o_c_id = ? order by o_id"
        )
        for key in (0, 3, 7, 3):
            rows = statement.execute((key,)).rows
            assert [row["o_id"] for row in rows] == [
                i for i in range(120) if i % 10 == key
            ]
        assert database.sharding_stats()["routed"] == 4

    def test_scatter_gather_filter(self):
        sharded = build_database(shards=4)
        unsharded = build_database()
        sql = "select o_id, o_total from orders where o_total > 50 order by o_id"
        assert (
            sharded.execute_sql(sql).rows == unsharded.execute_sql(sql).rows
        )
        assert sharded.sharding_stats()["scatter"] == 1

    def test_partial_aggregate_merge(self):
        sharded = build_database(shards=4)
        unsharded = build_database()
        sql = (
            "select o_c_id, count(*), sum(o_total), avg(o_total), "
            "min(o_total), max(o_total) from orders group by o_c_id "
            "order by o_c_id"
        )
        assert (
            sharded.execute_sql(sql).rows == unsharded.execute_sql(sql).rows
        )
        assert sharded.sharding_stats()["local"] == 1

    def test_scalar_aggregate_over_empty_sharded_table(self):
        database = build_database(shards=4)
        database.table("orders").clear()
        row = database.execute_sql(
            "select count(*), sum(o_total), avg(o_total) from orders"
        ).rows[0]
        assert row["count_all"] == 0
        assert row["sum_o_total"] is None
        assert row["avg_o_total"] is None

    def test_partial_aggregate_group_keys_colliding_bare_names(self):
        # GROUP BY o.o_id, c.c_id: both group columns collide on no bare
        # name here, so use a join where both sides expose a column with
        # the same bare name via aliasing of the same logical key space —
        # the merge must group on the qualified names, not the (collided)
        # bare key.
        sharded = build_database()
        sharded.shard_table("orders", "o_c_id", 4)
        unsharded = build_database()
        plan = algebra.Aggregate(
            algebra.Join(
                algebra.Scan("orders", "l"),
                algebra.Scan("orders", "r"),
                BinaryOp(
                    "=", ColumnRef("o_total", "l"), ColumnRef("o_total", "r")
                ),
            ),
            group_by=(ColumnRef("o_c_id", "l"), ColumnRef("o_c_id", "r")),
            aggregates=(algebra.AggregateSpec("count", None, "n"),),
        )
        key = lambda r: sorted((k, repr(v)) for k, v in r.items())  # noqa: E731
        got = sorted(
            sharded.execute_plan(plan, sql="self-agg").rows, key=key
        )
        want = sorted(
            unsharded.execute_plan(plan, sql="self-agg").rows, key=key
        )
        assert got == want

    def test_partial_aggregate_qualified_group_keys_over_join(self):
        # The reviewer's shape: sharded x broadcast join, grouped by one
        # column from each side where the bare names collide ("k"-style).
        database = Database()
        database.create_table(
            "lt", [Column("k", ColumnType.INT), Column("a", ColumnType.INT)]
        )
        database.create_table(
            "u", [Column("k", ColumnType.INT), Column("b", ColumnType.INT)]
        )
        database.insert("lt", [{"k": 1, "a": 10}, {"k": 2, "a": 10}])
        database.insert("u", [{"k": 5, "b": 10}])
        reference = Database()
        reference.create_table(
            "lt", [Column("k", ColumnType.INT), Column("a", ColumnType.INT)]
        )
        reference.create_table(
            "u", [Column("k", ColumnType.INT), Column("b", ColumnType.INT)]
        )
        reference.insert("lt", [{"k": 1, "a": 10}, {"k": 2, "a": 10}])
        reference.insert("u", [{"k": 5, "b": 10}])
        database.shard_table("lt", "k", 2)
        for db in (database, reference):
            db.analyze()
        plan = algebra.Aggregate(
            algebra.Join(
                algebra.Scan("lt", "l"),
                algebra.Scan("u", "u"),
                BinaryOp("=", ColumnRef("a", "l"), ColumnRef("b", "u")),
            ),
            group_by=(ColumnRef("k", "l"), ColumnRef("k", "u")),
            aggregates=(algebra.AggregateSpec("count", None, "n"),),
        )
        key = lambda r: sorted((k, repr(v)) for k, v in r.items())  # noqa: E731
        got = sorted(database.execute_plan(plan, sql="x").rows, key=key)
        want = sorted(reference.execute_plan(plan, sql="x").rows, key=key)
        assert got == want
        assert database.sharding_stats()["local"] == 1

    def test_co_partitioned_join_runs_shard_local(self):
        sharded = build_database(shards=4)
        unsharded = build_database()
        sql = (
            "select o.o_id, c.c_tier from orders o join customers c "
            "on o.o_c_id = c.c_id order by o.o_id"
        )
        assert (
            sharded.execute_sql(sql).rows == unsharded.execute_sql(sql).rows
        )
        assert sharded.sharding_stats()["local"] == 1

    def test_mismatched_shard_counts_fall_back(self):
        database = build_database()
        database.shard_table("orders", "o_c_id", 4)
        database.shard_table("customers", "c_id", 3)
        unsharded = build_database()
        sql = (
            "select o.o_id, c.c_tier from orders o join customers c "
            "on o.o_c_id = c.c_id order by o.o_id"
        )
        assert (
            database.execute_sql(sql).rows == unsharded.execute_sql(sql).rows
        )
        stats = database.sharding_stats()
        assert stats["local"] == 0
        assert stats["fallback"] == 1

    def test_limit_falls_back_to_aggregate_view(self):
        sharded = build_database(shards=4)
        unsharded = build_database()
        sql = "select * from orders limit 7"
        assert (
            sharded.execute_sql(sql).rows == unsharded.execute_sql(sql).rows
        )
        assert sharded.sharding_stats()["fallback"] == 1

    def test_sharded_join_with_unsharded_broadcast_side(self):
        database = build_database()
        database.shard_table("orders", "o_c_id", 4)  # customers unsharded
        unsharded = build_database()
        sql = (
            "select o.o_id, c.c_tier from orders o join customers c "
            "on o.o_c_id = c.c_id order by o.o_id"
        )
        assert (
            database.execute_sql(sql).rows == unsharded.execute_sql(sql).rows
        )
        assert database.sharding_stats()["scatter"] == 1

    def test_update_through_sharded_table(self):
        sharded = build_database(shards=4)
        unsharded = build_database()
        sql = "update orders set o_total = o_total + 1 where o_c_id = 3"
        assert sharded.execute_update_sql(sql) == unsharded.execute_update_sql(sql)
        query = "select * from orders order by o_id"
        assert (
            sharded.execute_sql(query).rows == unsharded.execute_sql(query).rows
        )

    def test_limit_below_the_shard_key_filter_is_not_routed(self):
        # Select(k = v, Limit(Scan)) must NOT pin to one shard: the Limit
        # picks the first N *global* rows, which a single partition cannot
        # reproduce.  The router falls back to the aggregate view, which is
        # exactly the unsharded execution.
        sharded = build_database(shards=4)
        unsharded = build_database()
        plan = algebra.Select(
            algebra.Limit(algebra.Scan("orders"), 5),
            BinaryOp("=", ColumnRef("o_c_id"), Literal(3)),
        )
        assert (
            sharded.execute_plan(plan).rows == unsharded.execute_plan(plan).rows
        )
        stats = sharded.sharding_stats()
        assert stats["routed"] == 0
        assert stats["fallback"] == 1

    def test_projection_renaming_the_shard_key_is_not_routed(self):
        # Select(k = v, Project(Scan, (a AS k,))) filters the *renamed*
        # column; hashing v against the real shard key would drop rows.
        sharded = build_database(shards=4)
        unsharded = build_database()
        plan = algebra.Select(
            algebra.Project(
                algebra.Scan("orders"),
                (algebra.OutputColumn(ColumnRef("o_total"), "o_c_id"),),
            ),
            BinaryOp("=", ColumnRef("o_c_id"), Literal(26)),
        )
        assert sorted(
            row["o_c_id"] for row in sharded.execute_plan(plan).rows
        ) == sorted(row["o_c_id"] for row in unsharded.execute_plan(plan).rows)
        assert sharded.sharding_stats()["routed"] == 0

    def test_join_side_renaming_the_shard_key_is_not_co_partitioned(self):
        # Project(Scan(customers), (c_tier AS c_id,)) as a join side must
        # not be classified co-partitioned: the condition compares the
        # renamed column, not the shard key.
        sharded = build_database(shards=4)
        unsharded = build_database()
        plan = algebra.Join(
            algebra.Scan("orders", "o"),
            algebra.Project(
                algebra.Scan("customers"),
                (algebra.OutputColumn(ColumnRef("c_tier"), "c_id"),),
            ),
            BinaryOp("=", ColumnRef("o_c_id", "o"), ColumnRef("c_id")),
        )
        key = lambda r: sorted(r.items())  # noqa: E731
        # (explicit sql label: the SQL generator cannot render a Project
        # as a join operand, which is irrelevant to this test)
        assert sorted(
            sharded.execute_plan(plan, sql="renamed-join").rows, key=key
        ) == sorted(
            unsharded.execute_plan(plan, sql="renamed-join").rows, key=key
        )
        assert sharded.sharding_stats()["local"] == 0

    def test_routing_preserves_predicate_error_semantics(self):
        # `10 / o_total > 0 and o_c_id = 3` evaluates the division on EVERY
        # row before the shard-key conjunct, so a zero in another shard
        # must still raise — the plan must not pin to one shard.  With the
        # shard-key conjunct first, unsharded execution short-circuits the
        # other shards' rows identically, so routing is sound.
        for mode in ("vectorized", "compiled", "interpreted"):
            sharded = build_database(shards=4, mode=mode)
            sharded.table("orders").update_rows(
                lambda row: row["o_id"] == 0, {"o_total": 0}
            )
            unsharded = build_database(mode=mode)
            unsharded.table("orders").update_rows(
                lambda row: row["o_id"] == 0, {"o_total": 0}
            )
            risky = "select * from orders where 10 / o_total > 0 and o_c_id = 3"
            with pytest.raises(ZeroDivisionError):
                unsharded.execute_sql(risky)
            with pytest.raises(ZeroDivisionError):
                sharded.execute_sql(risky)
            assert sharded.sharding_stats()["routed"] == 0
            # Shard-key conjunct first: short-circuit prunes the zero row
            # on both sides, and the plan routes.
            safe = "select * from orders where o_c_id = 3 and 10 / o_total > 0"
            assert (
                sharded.execute_sql(safe).rows == unsharded.execute_sql(safe).rows
            )
            if mode == "vectorized":
                assert sharded.sharding_stats()["routed"] == 1

    def test_pass_through_projection_still_routes(self):
        # A projection above the filter that merely passes the shard key
        # through (select o_c_id, ... where o_c_id = v) keeps routing.
        sharded = build_database(shards=4)
        rows = sharded.execute_sql(
            "select o_c_id, o_total from orders where o_c_id = 3"
        ).rows
        assert rows
        assert all(row["o_c_id"] == 3 for row in rows)
        assert sharded.sharding_stats()["routed"] == 1

    def test_sharding_counters_survive_sharding_another_table(self):
        # shard_table on a second table must reuse (and invalidate) the
        # router, not replace it — stats and folded per-shard executor
        # counters carry over.
        database = build_database()
        database.shard_table("orders", "o_c_id", 4)
        database.execute_sql("select o_id from orders where o_c_id = 3")
        database.execute_sql("select * from orders where o_total > 50")
        before = database.sharding_stats()
        assert before["routed"] == 1 and before["scatter"] == 1
        tiers_before = database.execution_stats()["tiers"]["vectorized"]
        assert tiers_before == 5  # 1 routed + 4 scatter shard executions
        database.shard_table("customers", "c_id", 4)
        after = database.sharding_stats()
        assert after["routed"] == 1 and after["scatter"] == 1
        assert database.execution_stats()["tiers"]["vectorized"] == 5

    def test_routing_counters_start_at_zero_without_sharding(self):
        database = build_database()
        database.execute_sql("select * from orders where o_c_id = 3")
        assert database.sharding_stats() == {
            "routed": 0,
            "local": 0,
            "scatter": 0,
            "fallback": 0,
            "tables": {},
            "parallel": {"mode": "serial", "workers": 1, "scatters": 0},
        }


class TestShardAwarePointLookup:
    def test_prepared_lookup_on_shard_key_uses_one_shard_index(self):
        database = build_database(shards=4)
        statement = database.prepare("select * from orders where o_c_id = ?")
        assert statement.point_lookup is not None
        before = database.sharding_stats()["routed"]
        rows = statement.execute((3,)).rows
        assert sorted(row["o_id"] for row in rows) == [
            i for i in range(120) if i % 10 == 3
        ]
        assert database.sharding_stats()["routed"] == before + 1
        # Only the value's home shard built its secondary index.
        table = database.table("orders")
        built = [
            bool(shard._indexes.get("o_c_id")) for shard in table.shards
        ]
        assert built.count(True) == 1

    def test_prepared_lookup_on_other_column_uses_aggregate_index(self):
        database = build_database(shards=4)
        statement = database.prepare("select * from orders where o_total = ?")
        rows = statement.execute((26,)).rows
        unsharded = build_database()
        expected = unsharded.prepare(
            "select * from orders where o_total = ?"
        ).execute((26,)).rows
        assert rows == expected
        assert database.sharding_stats()["fallback"] >= 1

    def test_point_lookup_matches_generic_path_across_modes(self):
        for mode in ("vectorized", "compiled", "interpreted"):
            database = build_database(shards=4, mode=mode)
            rows = database.execute_sql(
                "select * from orders where o_c_id = 7"
            ).rows
            reference = build_database(mode=mode).execute_sql(
                "select * from orders where o_c_id = 7"
            ).rows
            assert sorted(r["o_id"] for r in rows) == sorted(
                r["o_id"] for r in reference
            )


class TestStatisticsAggregation:
    def test_refresh_merges_per_shard_statistics(self):
        database = build_database(shards=4)
        stats = database.statistics.table_stats("orders")
        assert stats.row_count == 120
        assert stats.distinct["o_c_id"] == 10
        per_shard = database.statistics.shard_stats("orders")
        assert per_shard is not None
        assert len(per_shard) == 4
        assert sum(s.row_count for s in per_shard) == 120
        # The shard key's distinct counts are disjoint across shards.
        assert sum(s.distinct["o_c_id"] for s in per_shard) == 10

    def test_unsharded_tables_have_no_shard_stats(self):
        database = build_database()
        assert database.statistics.shard_stats("orders") is None

    def test_estimates_match_unsharded(self):
        sharded = build_database(shards=4)
        unsharded = build_database()
        for sql in (
            "select * from orders where o_c_id = 3",
            "select o_c_id, count(*) from orders group by o_c_id",
        ):
            a = sharded.estimate_sql(sql)
            b = unsharded.estimate_sql(sql)
            assert a.cardinality == pytest.approx(b.cardinality)
            assert a.row_width == b.row_width


class TestFallbackSubtreesUnderSharding:
    """Theta joins and unknown functions over a ShardedTable stay exact."""

    def test_theta_join_of_two_sharded_tables_matches_interpreted(self):
        sharded = build_database(shards=4)
        reference = build_database(mode="interpreted")
        plan = algebra.Join(
            algebra.Scan("orders", "o"),
            algebra.Scan("customers", "c"),
            BinaryOp("<", ColumnRef("o_c_id", "o"), ColumnRef("c_id", "c")),
        )
        assert (
            sharded.execute_plan(plan).rows == reference.execute_plan(plan).rows
        )
        assert sharded.sharding_stats()["fallback"] == 1

    def test_theta_join_sharded_with_broadcast_side(self):
        database = build_database()
        database.shard_table("orders", "o_c_id", 4)
        reference = build_database(mode="interpreted")
        plan = algebra.Join(
            algebra.Scan("orders", "o"),
            algebra.Scan("customers", "c"),
            BinaryOp("<", ColumnRef("o_c_id", "o"), ColumnRef("c_id", "c")),
        )
        rows = database.execute_plan(plan).rows
        expected = reference.execute_plan(plan).rows
        # Scatter-gather concatenates in shard order: same multiset.
        key = lambda r: sorted(r.items())  # noqa: E731
        assert sorted(rows, key=key) == sorted(expected, key=key)
        assert database.sharding_stats()["scatter"] == 1

    def test_unknown_function_over_sharded_table_raises_identically(self):
        sharded = build_database(shards=4)
        reference = build_database(mode="interpreted")
        plan = algebra.Project(
            algebra.Scan("orders"),
            (
                algebra.OutputColumn(
                    FunctionCall("no_such_function", (ColumnRef("o_id"),)),
                    "out",
                ),
            ),
        )
        with pytest.raises(Exception) as sharded_error:
            sharded.execute_plan(plan)
        with pytest.raises(Exception) as reference_error:
            reference.execute_plan(plan)
        assert str(sharded_error.value) == str(reference_error.value)

    def test_known_function_scatter_matches_unsharded(self):
        sharded = build_database(shards=4)
        unsharded = build_database(mode="interpreted")
        plan = algebra.Sort(
            algebra.Project(
                algebra.Scan("orders"),
                (
                    algebra.OutputColumn(ColumnRef("o_id"), "o_id"),
                    algebra.OutputColumn(
                        FunctionCall("abs", (ColumnRef("o_total"),)), "t"
                    ),
                ),
            ),
            (algebra.SortKey(ColumnRef("o_id")),),
        )
        assert (
            sharded.execute_plan(plan).rows == unsharded.execute_plan(plan).rows
        )

    def test_fallback_reasons_fold_into_retired_totals_across_ddl(self):
        # A scatter theta join (orders sharded, customers broadcast) has
        # no vectorized lowering: the scatter probe records ``theta_join``
        # on a per-shard executor before the row-tier scatter takes over.
        # DDL (sharding another table) retires those executors, so their
        # reasons must fold into the retired totals and post-DDL
        # executions must merge on top.
        database = build_database()
        database.shard_table("orders", "o_c_id", 4)
        plan = algebra.Join(
            algebra.Scan("orders", "o"),
            algebra.Scan("customers", "c"),
            BinaryOp("<", ColumnRef("o_c_id", "o"), ColumnRef("c_id", "c")),
        )
        database.execute_plan(plan)
        database.execute_plan(plan)
        live = database.execution_stats()["vectorized"]
        assert live["fallback_reasons"] == {"theta_join": 2}
        fallbacks_before = live["fallbacks"]
        assert database.sharding_stats()["scatter"] == 2
        # DDL: sharding another table reuses (and invalidates) the
        # router, folding live per-shard counters into retired totals.
        database.create_table(
            "regions",
            [
                Column("r_id", ColumnType.INT),
                Column("r_pop", ColumnType.INT),
            ],
            primary_key="r_id",
        )
        database.shard_table("regions", "r_id", 2)
        retired = database.execution_stats()["vectorized"]
        assert retired["fallback_reasons"] == {"theta_join": 2}
        assert retired["fallbacks"] == fallbacks_before
        # Fresh per-shard executors after the DDL merge on top of the
        # retired totals rather than resetting them.
        database.execute_plan(plan)
        merged = database.execution_stats()["vectorized"]
        assert merged["fallback_reasons"] == {"theta_join": 3}
        assert merged["fallbacks"] == fallbacks_before + 1


class TestEngineFacade:
    def test_builder_shards_with_explicit_keys(self):
        engine = (
            Engine.builder()
            .orders_workload(num_orders=200, num_customers=20)
            .shards(
                4,
                key_by={
                    "orders": "o_customer_sk",
                    "customer": "c_customer_sk",
                },
            )
            .build()
        )
        sharding = engine.stats()["sharding"]
        assert sharding["tables"] == {"orders": 4, "customer": 4}

    def test_builder_shards_default_primary_keys(self):
        engine = (
            Engine.builder()
            .orders_workload(num_orders=100, num_customers=10)
            .shards(3)
            .build()
        )
        tables = engine.stats()["sharding"]["tables"]
        assert tables.get("orders") == 3
        assert tables.get("customer") == 3

    def test_builder_rejects_bad_shard_count(self):
        from repro.api.engine import EngineConfigError

        with pytest.raises(EngineConfigError):
            Engine.builder().shards(0)

    def test_stats_report_routing_counts_through_cursor(self):
        engine = (
            Engine.builder()
            .orders_workload(num_orders=200, num_customers=20)
            .shards(4, key_by={"orders": "o_customer_sk"})
            .build()
        )
        with engine.cursor() as cursor:
            cursor.execute(
                "select * from orders where o_customer_sk = ?", (5,)
            )
            cursor.fetchall()
            cursor.execute("select count(*) from orders")
            cursor.fetchall()
        sharding = engine.stats()["sharding"]
        assert sharding["routed"] >= 1
        assert sharding["local"] >= 1

    def test_orm_session_over_sharded_database(self):
        engine = (
            Engine.builder()
            .orders_workload(num_orders=200, num_customers=20)
            .shards(4)
            .build()
        )
        session = engine.session()
        order = session.get("Order", 5)
        assert order is not None
        # Lazy many-to-one load crosses into the sharded customer table.
        assert order.customer is not None
        assert order.customer.c_customer_sk == order.o_customer_sk
        assert len(session.load_all("Customer")) == 20


class TestShardedExecutionModes:
    """Routing participates identically in all three executor tiers."""

    @pytest.mark.parametrize("mode", ["vectorized", "compiled", "interpreted"])
    def test_tier_rows_identical_under_sharding(self, mode):
        sharded = build_database(shards=4, mode=mode)
        reference = build_database(mode="interpreted")
        for sql in (
            "select * from orders where o_c_id = 3",
            "select o_id, o_total from orders where o_total > 50 order by o_id, o_total",
            "select o_c_id, count(*), sum(o_total), avg(o_total) from orders "
            "group by o_c_id order by o_c_id",
            "select o.o_id, c.c_tier from orders o join customers c "
            "on o.o_c_id = c.c_id order by o.o_id",
        ):
            got = sharded.execute_sql(sql).rows
            want = reference.execute_sql(sql).rows
            key = lambda r: sorted(  # noqa: E731
                (k, repr(v)) for k, v in r.items()
            )
            assert sorted(got, key=key) == sorted(want, key=key), (mode, sql)

    def test_execution_stats_fold_in_shard_executor_counters(self):
        database = build_database(shards=4, mode="vectorized")
        # Routed through the executor (a projection defeats the prepared
        # point-lookup fast path, which never enters the executor).
        database.execute_sql("select o_id from orders where o_c_id = 3")
        database.execute_sql("select * from orders where o_total > 50")  # scatter
        database.execute_sql(
            "select o_c_id, count(*) from orders group by o_c_id"
        )  # local partial aggregate
        stats = database.execution_stats()
        # routed = 1 shard execution; scatter + partial agg = 4 shards each.
        assert stats["tiers"]["vectorized"] == 9
        assert stats["vectorized"]["executions"] == 9
        # Counters survive DDL-driven shard-executor invalidation.
        database.create_table(
            "extra", [Column("x", ColumnType.INT)], primary_key="x"
        )
        assert database.execution_stats()["tiers"]["vectorized"] == 9

    def test_vectorized_sum_raises_like_row_tiers_on_non_numeric(self):
        # sum() over strings must raise on every tier (the row tiers seed
        # with 0); the vectorized kernel must not silently concatenate.
        for shards in (0, 3):
            database = Database()
            database.create_table(
                "s",
                [
                    Column("g", ColumnType.INT),
                    Column("name", ColumnType.STRING, width=8),
                ],
            )
            if shards:
                database.shard_table("s", "g", shards)
            database.insert(
                "s", [{"g": i % 2, "name": c} for i, c in enumerate("abcd")]
            )
            database.analyze()
            with pytest.raises(TypeError):
                database.execute_sql("select sum(name) from s")
            with pytest.raises(TypeError):
                database.execute_sql("select g, sum(name) from s group by g")

    def test_vectorized_scatter_gathers_column_batches(self):
        database = build_database(shards=4, mode="vectorized")
        plan = algebra.Select(
            algebra.Scan("orders"),
            BinaryOp(">", ColumnRef("o_total"), Literal(50)),
        )
        rows = database._executor.execute(plan)
        assert rows
        router = database._router
        # Every shard executor served its batch from the vectorized tier.
        shard_executors = [
            executor
            for (names, _), executor in router._executors.items()
            if "orders" in names
        ]
        assert shard_executors
        assert all(
            executor._vectorized.executions >= 1 for executor in shard_executors
        )
