"""Shared fixtures for the test suite.

Fixtures are session-scoped where the underlying object is read-only for the
tests that use it (databases, registries); tests that mutate state build their
own instances.
"""

from __future__ import annotations

import pytest

from repro.appsim.runtime import AppRuntime
from repro.core.catalog import catalog_for_network
from repro.db.database import Database
from repro.db.schema import Column, ColumnType, ForeignKey
from repro.net.network import FAST_LOCAL, SLOW_REMOTE
from repro.workloads import tpcds
from repro.workloads.wilos import build_wilos_database


@pytest.fixture(scope="session")
def orders_database() -> Database:
    """A small orders/customer database (300 orders, 60 customers)."""
    return tpcds.build_orders_database(num_orders=300, num_customers=60)


@pytest.fixture(scope="session")
def large_customer_database() -> Database:
    """Few orders, many customers (the regime where the SQL join wins)."""
    return tpcds.build_orders_database(num_orders=100, num_customers=3_000)


@pytest.fixture(scope="session")
def wilos_database() -> Database:
    """A small Wilos-like database (largest relation 800 rows)."""
    return build_wilos_database(scale=800)


@pytest.fixture(scope="session")
def registry():
    """The Order/Customer ORM mapping registry."""
    return tpcds.build_registry()


@pytest.fixture()
def orders_runtime() -> AppRuntime:
    """A fresh runtime over a small orders database, fast local network."""
    return tpcds.build_runtime(
        num_orders=200, num_customers=50, network=FAST_LOCAL
    )


@pytest.fixture()
def slow_orders_runtime() -> AppRuntime:
    """A fresh runtime over a small orders database, slow remote network."""
    return tpcds.build_runtime(
        num_orders=200, num_customers=50, network=SLOW_REMOTE
    )


@pytest.fixture(scope="session")
def slow_params():
    return catalog_for_network("slow-remote")


@pytest.fixture(scope="session")
def fast_params():
    return catalog_for_network("fast-local")


@pytest.fixture()
def simple_database() -> Database:
    """A two-table department/employee database used by many unit tests."""
    database = Database()
    database.create_table(
        "department",
        [
            Column("dept_id", ColumnType.INT),
            Column("dept_name", ColumnType.STRING, width=20),
            Column("budget", ColumnType.FLOAT),
        ],
        primary_key="dept_id",
    )
    database.create_table(
        "employee",
        [
            Column("emp_id", ColumnType.INT),
            Column("name", ColumnType.STRING, width=20),
            Column("dept_id", ColumnType.INT),
            Column("salary", ColumnType.FLOAT),
            Column("age", ColumnType.INT),
        ],
        primary_key="emp_id",
        foreign_keys=[ForeignKey("dept_id", "department", "dept_id")],
    )
    database.insert(
        "department",
        [
            {"dept_id": 1, "dept_name": "eng", "budget": 100.0},
            {"dept_id": 2, "dept_name": "sales", "budget": 50.0},
            {"dept_id": 3, "dept_name": "hr", "budget": 25.0},
        ],
    )
    database.insert(
        "employee",
        [
            {"emp_id": 1, "name": "ann", "dept_id": 1, "salary": 90.0, "age": 31},
            {"emp_id": 2, "name": "bob", "dept_id": 1, "salary": 80.0, "age": 45},
            {"emp_id": 3, "name": "carol", "dept_id": 2, "salary": 70.0, "age": 28},
            {"emp_id": 4, "name": "dave", "dept_id": 2, "salary": 60.0, "age": 52},
            {"emp_id": 5, "name": "erin", "dept_id": 3, "salary": 55.0, "age": 39},
            {"emp_id": 6, "name": "frank", "dept_id": None, "salary": 40.0, "age": 23},
        ],
    )
    database.analyze()
    return database
