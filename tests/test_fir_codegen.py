"""Unit tests for F-IR code generation helpers."""

import ast

import pytest

from repro.fir import codegen
from repro.fir.builder import LookupBinding


def stmt(source: str) -> ast.stmt:
    return ast.parse(source).body[0]


class TestRewriters:
    def test_row_access_rewriter_attribute_and_subscript(self):
        rewriter = codegen.RowAccessRewriter(
            {"o": ("r", "orders"), "cust": ("r", "customer")}
        )
        rewritten = codegen.rewrite_statements(
            [stmt("val = my_func(o.o_id, cust['c_birth_year'])")], rewriter
        )
        text = ast.unparse(rewritten[0])
        assert "r['orders.o_id']" in text
        assert "r['customer.c_birth_year']" in text

    def test_row_access_rewriter_without_qualifier(self):
        rewriter = codegen.RowAccessRewriter({"o": ("row", None)})
        rewritten = codegen.rewrite_statements([stmt("x = o.amount")], rewriter)
        assert "row['amount']" in ast.unparse(rewritten[0])

    def test_rewrite_statements_drops_requested_statements(self):
        keep = stmt("x = 1")
        drop = stmt("y = 2")
        result = codegen.rewrite_statements(
            [keep, drop], codegen.RowAccessRewriter({}), drop=[drop]
        )
        assert len(result) == 1
        assert ast.unparse(result[0]) == "x = 1"

    def test_subscript_style_rewriter(self):
        rewriter = codegen.SubscriptStyleRewriter(["cust"])
        rewritten = codegen.rewrite_statements(
            [stmt("v = cust.c_birth_year + other.field")], rewriter
        )
        text = ast.unparse(rewritten[0])
        assert "cust['c_birth_year']" in text
        assert "other.field" in text

    def test_unparse_block_indentation(self):
        text = codegen.unparse_block([stmt("a = 1"), stmt("b = 2")], indent=4)
        assert text == "    a = 1\n    b = 2"


class TestSqlBuilders:
    def _binding(self) -> LookupBinding:
        return LookupBinding(
            variable="cust",
            kind="lazy_load",
            table="customer",
            key_column="c_customer_sk",
            key_expression=ast.parse("o.o_customer_sk", mode="eval").body,
            source_column="o_customer_sk",
        )

    def test_build_join_sql(self):
        sql = codegen.build_join_sql("select * from orders", self._binding())
        assert sql == (
            "select * from orders join customer "
            "on orders.o_customer_sk = customer.c_customer_sk"
        )

    def test_build_join_sql_preserves_outer_filter(self):
        sql = codegen.build_join_sql(
            "select * from orders where o_status = 'OPEN'", self._binding()
        )
        assert "where o_status = 'OPEN'" in sql and "join customer" in sql

    def test_build_join_sql_rejects_unjoinable_outer(self):
        sql = codegen.build_join_sql(
            "select count(*) from orders", self._binding()
        )
        assert sql is None

    def test_build_nested_join_sql(self):
        sql = codegen.build_nested_join_sql(
            "select * from participant",
            "select * from role",
            "participant.role_id = role.role_id",
        )
        assert "join role on participant.role_id = role.role_id" in sql

    def test_build_aggregate_sql(self):
        result = codegen.build_aggregate_sql(
            "select month, sale_amt from sales order by month", "sum", "sale_amt"
        )
        assert result is not None
        sql, name = result
        assert sql == "select sum(sale_amt) from sales"
        assert name == "sum_sale_amt"

    def test_build_aggregate_count_star(self):
        result = codegen.build_aggregate_sql(
            "select * from concrete_task where activity_id = ?", "count", None
        )
        assert result is not None
        sql, name = result
        assert "count(*)" in sql and "where activity_id = ?" in sql
        assert name == "count_all"

    def test_push_predicate_sql(self):
        sql = codegen.push_predicate_sql(
            "select * from concrete_task", "activity_id = ?"
        )
        assert sql == "select * from concrete_task where activity_id = ?"

    def test_push_predicate_preserves_order_by(self):
        sql = codegen.push_predicate_sql(
            "select * from sales order by month", "amount > 5"
        )
        assert "where amount > 5" in sql and "order by month" in sql


class TestPredicateTranslation:
    def test_simple_column_constant(self):
        guard = ast.parse("t['points'] > 10", mode="eval").body
        predicate, params = codegen.predicate_to_sql(guard, "t")
        assert predicate == "points > 10"
        assert params == []

    def test_column_equals_outer_value_becomes_parameter(self):
        guard = ast.parse("t['activity_id'] == a['activity_id']", mode="eval").body
        predicate, params = codegen.predicate_to_sql(guard, "t")
        assert predicate == "activity_id = ?"
        assert params == ["a['activity_id']"]

    def test_swapped_operands_keep_column_on_left(self):
        guard = ast.parse("key < t['points']", mode="eval").body
        predicate, params = codegen.predicate_to_sql(guard, "t")
        assert predicate == "points > ?"
        assert params == ["key"]

    def test_boolean_combination(self):
        guard = ast.parse(
            "t['points'] > 3 and t['state'] == 'done'", mode="eval"
        ).body
        predicate, params = codegen.predicate_to_sql(guard, "t")
        assert "points > 3" in predicate and "state = 'done'" in predicate
        assert params == []

    def test_untranslatable_guard_returns_none(self):
        guard = ast.parse("helper(t)", mode="eval").body
        assert codegen.predicate_to_sql(guard, "t") is None

    def test_guard_column_helper(self):
        assert codegen.guard_column(ast.parse("t.x", mode="eval").body, "t") == "x"
        assert (
            codegen.guard_column(ast.parse("t['y']", mode="eval").body, "t") == "y"
        )
        assert codegen.guard_column(ast.parse("other.x", mode="eval").body, "t") is None
