"""Transaction semantics: BEGIN/COMMIT/ROLLBACK, undo, and close paths."""

from __future__ import annotations

import asyncio

import pytest

from repro.api.engine import Engine, EngineClosedError
from repro.db.database import Database, TransactionError
from repro.db.schema import Column, ColumnType
from repro.net.connection import ConnectionClosedError, SimulatedConnection
from repro.net.network import FAST_LOCAL


def make_database(wal: bool = False) -> Database:
    database = Database(wal=wal)
    database.create_table(
        "items",
        [
            Column("item_id", ColumnType.INT),
            Column("label", ColumnType.STRING, width=12),
            Column("grp", ColumnType.INT),
        ],
        primary_key="item_id",
    )
    database.insert(
        "items",
        [
            {"item_id": i, "label": f"item{i}", "grp": i % 3}
            for i in range(10)
        ],
    )
    return database


def rows_of(database: Database) -> list[dict]:
    return [dict(row) for row in database.table("items").rows]


class TestDatabaseTransactions:
    def test_commit_makes_writes_stick(self):
        database = make_database()
        txn = database.begin()
        database.insert("items", [{"item_id": 50, "label": "new", "grp": 9}])
        database.update_table(
            "items", lambda row: row["item_id"] == 0, {"label": "zero"}
        )
        assert database.in_transaction
        txn.commit()
        assert not database.in_transaction
        assert database.table("items").lookup_pk(50)["label"] == "new"
        assert database.table("items").lookup_pk(0)["label"] == "zero"
        assert database.txn_stats.committed == 1

    def test_rollback_restores_exact_prior_state(self):
        database = make_database()
        before = rows_of(database)
        txn = database.begin()
        database.insert(
            "items",
            [{"item_id": 60 + i, "label": "tmp", "grp": 0} for i in range(3)],
        )
        database.update_table("items", lambda row: True, {"label": "wiped"})
        database.update_table(
            "items", lambda row: row["grp"] == 1, {"item_id": lambda r: r["item_id"] + 1000}
        )
        txn.rollback()
        assert rows_of(database) == before
        # The pk index is restored too: moved keys are back, temp rows gone.
        assert database.table("items").lookup_pk(1)["label"] == "item1"
        assert database.table("items").lookup_pk(1001) is None
        assert database.table("items").lookup_pk(60) is None
        assert database.txn_stats.rolled_back == 1

    def test_transaction_sees_its_own_writes(self):
        database = make_database()
        with database.begin():
            database.insert(
                "items", [{"item_id": 70, "label": "mine", "grp": 1}]
            )
            result = database.execute_sql(
                "select * from items where item_id = ?", (70,)
            )
            assert result.cardinality == 1

    def test_second_begin_raises_single_writer(self):
        database = make_database()
        database.begin()
        with pytest.raises(TransactionError, match="single-writer"):
            database.begin()

    def test_ddl_inside_transaction_raises(self):
        database = make_database()
        with database.begin():
            with pytest.raises(TransactionError, match="autocommit-only"):
                database.create_table("other", [Column("a", ColumnType.INT)])
            with pytest.raises(TransactionError, match="autocommit-only"):
                database.shard_table("items", "item_id", 2)

    def test_finished_transaction_cannot_be_reused(self):
        database = make_database()
        txn = database.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()
        with pytest.raises(TransactionError):
            txn.rollback()
        with pytest.raises(TransactionError):
            with txn:
                pass

    def test_context_manager_commits_on_success_rolls_back_on_error(self):
        database = make_database()
        with database.begin():
            database.insert(
                "items", [{"item_id": 80, "label": "kept", "grp": 0}]
            )
        assert database.table("items").lookup_pk(80) is not None
        with pytest.raises(RuntimeError):
            with database.begin():
                database.insert(
                    "items", [{"item_id": 81, "label": "gone", "grp": 0}]
                )
                raise RuntimeError("abort")
        assert database.table("items").lookup_pk(81) is None
        assert database.txn_stats.begun == 2

    def test_uncommitted_transaction_is_not_durable(self):
        database = make_database(wal=True)
        database.begin()
        database.insert(
            "items", [{"item_id": 90, "label": "volatile", "grp": 0}]
        )
        # Crash here: the commit record never landed.
        recovered = Database.recover(database.wal)
        assert recovered.table("items").lookup_pk(90) is None
        assert len(recovered.table("items")) == 10

    def test_rollback_on_sharded_table_rehomes_exactly(self):
        database = make_database()
        database.shard_table("items", "grp", 3)
        before = rows_of(database)
        with pytest.raises(RuntimeError):
            with database.begin():
                # Shard-key moves inside the transaction...
                database.update_table(
                    "items", lambda row: row["grp"] == 0, {"grp": 2}
                )
                raise RuntimeError("abort")
        # ...are rehomed back on rollback, partition-for-partition.
        assert rows_of(database) == before
        table = database.table("items")
        for index, shard in enumerate(table.shards):
            for row in shard.rows:
                assert table.shard_index(row["grp"]) == index


class TestConnectionTransactions:
    def make_connection(self, database=None) -> SimulatedConnection:
        return SimulatedConnection(database or make_database(), FAST_LOCAL)

    def test_begin_commit_through_connection(self):
        connection = self.make_connection()
        connection.begin()
        assert connection.in_transaction
        connection.execute_update(
            "update items set label = 'x' where item_id = 3"
        )
        connection.commit()
        assert not connection.in_transaction
        assert connection.database.table("items").lookup_pk(3)["label"] == "x"

    def test_commit_and_rollback_without_transaction_are_noops(self):
        connection = self.make_connection()
        connection.commit()
        connection.rollback()
        assert connection.elapsed == 0.0

    def test_rollback_through_connection(self):
        connection = self.make_connection()
        connection.begin()
        connection.execute_update("update items set label = 'y'")
        connection.rollback()
        labels = {
            row["label"] for row in connection.database.table("items").rows
        }
        assert "y" not in labels

    def test_transaction_control_round_trips_charged(self):
        connection = self.make_connection()
        connection.begin()
        connection.commit()
        assert connection.stats.round_trips == 2
        assert connection.elapsed == pytest.approx(
            2 * FAST_LOCAL.round_trip_seconds
        )

    def test_cursor_routes_transaction_statements(self):
        connection = self.make_connection()
        cursor = connection.cursor()
        cursor.execute("BEGIN")
        assert connection.in_transaction
        cursor.execute("update items set label = 'via-sql' where item_id = 1")
        cursor.execute("commit;")
        assert not connection.in_transaction
        assert (
            connection.database.table("items").lookup_pk(1)["label"]
            == "via-sql"
        )
        cursor.execute("begin transaction")
        cursor.execute("update items set label = 'undone' where item_id = 1")
        cursor.execute("ROLLBACK")
        assert (
            connection.database.table("items").lookup_pk(1)["label"]
            == "via-sql"
        )

    def test_close_rolls_back_open_transaction(self):
        connection = self.make_connection()
        connection.begin()
        connection.execute_update("update items set label = 'doomed'")
        connection.close()
        labels = {
            row["label"] for row in connection.database.table("items").rows
        }
        assert "doomed" not in labels
        assert not connection.database.in_transaction


class TestCloseIdempotency:
    def test_connection_double_close_is_safe(self):
        database = make_database()
        connection = SimulatedConnection(database, FAST_LOCAL)
        connection.close()
        connection.close()  # second close must be a no-op
        assert connection.closed
        with pytest.raises(ConnectionClosedError):
            connection.execute_query("select * from items")
        with pytest.raises(ConnectionClosedError):
            connection.cursor()
        with pytest.raises(ConnectionClosedError):
            connection.begin()
        with pytest.raises(ConnectionClosedError):
            connection.commit()

    def test_double_close_with_open_transaction_rolls_back_once(self):
        database = make_database()
        connection = SimulatedConnection(database, FAST_LOCAL)
        connection.begin()
        connection.execute_update("update items set label = 'temp'")
        connection.close()
        assert database.txn_stats.rolled_back == 1
        connection.close()
        assert database.txn_stats.rolled_back == 1

    def test_engine_double_close_and_use_after_close(self):
        engine = Engine.builder().database(make_database()).build()
        connection = engine.connect()
        engine.close()
        engine.close()
        assert engine.closed and connection.closed
        with pytest.raises(EngineClosedError):
            engine.connect()
        with pytest.raises(ConnectionClosedError):
            connection.execute_query("select * from items")

    def test_async_engine_double_close(self):
        async def scenario():
            engine = Engine.builder().database(make_database()).build()
            aengine = engine.aio()
            conn = aengine.connect()
            await conn.execute("select * from items where item_id = ?", (1,))
            conn.close()
            conn.close()
            aengine.close()
            aengine.close()
            with pytest.raises(EngineClosedError):
                aengine.connect()
            with pytest.raises(ConnectionClosedError):
                await conn.execute("select * from items")

        asyncio.run(scenario())

    def test_async_connection_close_rolls_back_open_transaction(self):
        async def scenario():
            database = make_database()
            engine = Engine.builder().database(database).build()
            aengine = engine.aio()
            conn = aengine.connect()
            await conn.begin()
            await conn.execute_update("update items set label = 'temp'")
            conn.close()
            assert database.txn_stats.rolled_back == 1
            assert not database.in_transaction
            conn.close()
            assert database.txn_stats.rolled_back == 1

        asyncio.run(scenario())

    def test_async_transaction_commit_and_rollback(self):
        async def scenario():
            database = make_database()
            engine = Engine.builder().database(database).build()
            conn = engine.aio().connect()
            await conn.begin()
            assert conn.in_transaction
            await conn.execute_update(
                "update items set label = 'async' where item_id = 2"
            )
            await conn.commit()
            assert database.table("items").lookup_pk(2)["label"] == "async"
            # PEP 249: commit/rollback without a transaction are no-ops.
            await conn.commit()
            await conn.rollback()
            await conn.begin()
            await conn.execute_update(
                "update items set label = 'undone' where item_id = 2"
            )
            await conn.rollback()
            assert database.table("items").lookup_pk(2)["label"] == "async"

        asyncio.run(scenario())
