"""MVCC snapshot isolation: serial equivalence, visibility, conflicts.

The centerpiece is the serial-equivalence property: any *serial* workload
(one transaction at a time) must produce row-identical tables with MVCC on
and off, across all three executor tiers, sharded and unsharded — MVCC may
change what concurrent readers see mid-flight, never what a serial history
leaves behind.  Extra seeds widen the sweep via the ``FAULT_SEEDS``
environment variable, same as ``make test-faults``.

The rest pins the concurrency semantics that have no MVCC-off counterpart:
snapshot visibility across concurrent commits, first-committer-wins,
retry via ``run_transaction``, vacuum, fault interaction on COMMIT, and
recovery of an MVCC database from its WAL.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.api.engine import Engine
from repro.db.database import Database, TransactionError
from repro.db.mvcc import SerializationError
from repro.db.schema import Column, ColumnType
from repro.net.faults import (
    AmbiguousCommitError,
    FaultPolicy,
    RetryPolicy,
)
from repro.net.network import FAST_LOCAL

SEEDS = [0, 7, 13] + [
    int(token) for token in os.environ.get("FAULT_SEEDS", "").split()
]

ITEM_COLUMNS = [
    Column("item_id", ColumnType.INT),
    Column("label", ColumnType.STRING, width=16),
    Column("grp", ColumnType.INT),
    Column("qty", ColumnType.INT),
]


def make_database(
    *, mvcc: bool, sharded: bool = False, mode: str = "interpreted", **kwargs
) -> Database:
    database = Database(execution_mode=mode, mvcc=mvcc, **kwargs)
    database.create_table("items", ITEM_COLUMNS, primary_key="item_id")
    database.insert(
        "items",
        [
            {"item_id": i, "label": f"item{i}", "grp": i % 3, "qty": 10}
            for i in range(16)
        ],
    )
    if sharded:
        database.shard_table("items", "grp", 3)
    return database


def table_rows(database: Database) -> list[dict]:
    return [dict(row) for row in database.table("items").rows]


def run_serial_workload(database: Database, seed: int) -> None:
    """A seeded mix of autocommit writes, committed and rolled-back
    transactions — strictly serial, so MVCC must be invisible."""
    rng = random.Random(seed)
    next_id = 100
    for _ in range(12):
        choice = rng.randrange(4)
        if choice == 0:
            database.insert(
                "items",
                [
                    {
                        "item_id": next_id + i,
                        "label": f"new{next_id + i}",
                        "grp": rng.randrange(3),
                        "qty": rng.randrange(50),
                    }
                    for i in range(rng.randrange(1, 4))
                ],
            )
            next_id += 4
        elif choice == 1:
            database.execute_update_sql(
                f"update items set qty = {rng.randrange(100)} "
                f"where grp = {rng.randrange(3)}"
            )
        elif choice == 2:
            with database.begin():
                database.execute_update_sql(
                    f"update items set label = 'txn{rng.randrange(10)}' "
                    f"where item_id = {rng.randrange(16)}"
                )
                database.insert(
                    "items",
                    [
                        {
                            "item_id": next_id,
                            "label": "intxn",
                            "grp": rng.randrange(3),
                            # shard-key move candidate when sharded
                            "qty": rng.randrange(50),
                        }
                    ],
                )
                next_id += 1
        else:
            txn = database.begin()
            database.execute_update_sql(
                "update items set qty = 0 where item_id >= 0"
            )
            txn.rollback()


class TestSerialEquivalence:
    @pytest.mark.parametrize(
        "mode", ["interpreted", "compiled", "vectorized"]
    )
    @pytest.mark.parametrize(
        "sharded", [False, True], ids=["plain", "sharded"]
    )
    @pytest.mark.parametrize("seed", SEEDS)
    def test_mvcc_on_equals_mvcc_off_for_serial_workloads(
        self, mode, sharded, seed
    ):
        baseline = make_database(mvcc=False, sharded=sharded, mode=mode)
        versioned = make_database(mvcc=True, sharded=sharded, mode=mode)
        run_serial_workload(baseline, seed)
        run_serial_workload(versioned, seed)
        assert table_rows(versioned) == table_rows(baseline)
        sql = "select grp, count(*), sum(qty) from items group by grp"
        assert (
            versioned.execute_sql(sql).rows == baseline.execute_sql(sql).rows
        )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_serial_workload_leaves_no_retained_versions(self, seed):
        database = make_database(mvcc=True)
        run_serial_workload(database, seed)
        # With no open contexts the post-workload vacuum horizon covers
        # everything: nothing is retained and nothing is left to reclaim.
        assert database.vacuum() == 0
        stats = database.mvcc_stats()
        assert stats["undo_entries"] == 0
        assert stats["active_transactions"] == 0
        assert stats["active_snapshots"] == 0


class TestSnapshotVisibility:
    def test_reader_opened_before_update_sees_old_rows(self):
        database = make_database(mvcc=True)
        with database.snapshot() as snap:
            database.execute_update_sql(
                "update items set qty = 99 where item_id < 4"
            )
            old = snap.execute(
                "select qty from items where item_id = 0"
            ).rows
            assert old[0]["qty"] == 10
            live = database.execute_sql(
                "select qty from items where item_id = 0"
            ).rows
            assert live[0]["qty"] == 99
        # After close the snapshot's horizon is released.
        assert database.mvcc_stats()["active_snapshots"] == 0

    def test_reader_opened_before_concurrent_txn_commit(self):
        """The ISSUE's interleaving: a reader opened before a concurrent
        transaction commits keeps seeing the old rows."""
        database = make_database(mvcc=True)
        snap = database.snapshot()
        txn = database.begin()
        database.execute_update_sql(
            "update items set label = 'changed' where item_id = 3"
        )
        txn.commit()
        assert (
            snap.execute(
                "select label from items where item_id = 3"
            ).rows[0]["label"]
            == "item3"
        )
        assert (
            database.execute_sql(
                "select label from items where item_id = 3"
            ).rows[0]["label"]
            == "changed"
        )
        snap.close()

    def test_transaction_sees_own_writes_others_do_not(self):
        database = make_database(mvcc=True)
        txn = database.begin()
        database.execute_update_sql(
            "update items set qty = 77 where item_id = 5"
        )
        sql = "select qty from items where item_id = 5"
        # The transaction's ambient view includes its buffered write...
        assert database.execute_sql(sql).rows[0]["qty"] == 77
        # ...but the committed state does not (deferred apply).
        with database.using(None):
            assert database.execute_sql(sql).rows[0]["qty"] == 10
        txn.commit()
        assert database.execute_sql(sql).rows[0]["qty"] == 77

    def test_rollback_discards_buffered_writes(self):
        database = make_database(mvcc=True)
        before = table_rows(database)
        txn = database.begin()
        database.execute_update_sql("update items set qty = 0")
        database.insert(
            "items",
            [{"item_id": 500, "label": "ghost", "grp": 0, "qty": 1}],
        )
        txn.rollback()
        assert table_rows(database) == before

    def test_snapshots_are_read_only(self):
        database = make_database(mvcc=True)
        with database.snapshot() as snap:
            with database.using(snap):
                with pytest.raises(TransactionError, match="read-only"):
                    database.execute_update_sql(
                        "update items set qty = 1 where item_id = 0"
                    )

    def test_snapshot_requires_mvcc(self):
        database = make_database(mvcc=False)
        with pytest.raises(TransactionError, match="require MVCC"):
            database.snapshot()

    def test_concurrent_transactions_allowed_only_under_mvcc(self):
        legacy = make_database(mvcc=False)
        legacy.begin()
        with pytest.raises(TransactionError, match="single-writer"):
            legacy.begin()
        versioned = make_database(mvcc=True)
        t1 = versioned.begin()
        t2 = versioned.begin()  # no error: any number may run
        t1.rollback()
        t2.rollback()

    def test_ddl_blocked_while_contexts_open(self):
        database = make_database(mvcc=True)
        with database.snapshot():
            with pytest.raises(TransactionError, match="autocommit-only"):
                database.create_table(
                    "other", [Column("k", ColumnType.INT)]
                )


class TestFirstCommitterWins:
    def test_second_committer_loses(self):
        database = make_database(mvcc=True)
        t1 = database.begin()
        t2 = database.begin()
        sql = "update items set qty = {value} where item_id = 7"
        with database.using(t1):
            database.execute_update_sql(sql.format(value=111))
        with database.using(t2):
            database.execute_update_sql(sql.format(value=222))
        t1.commit()
        with pytest.raises(SerializationError) as excinfo:
            t2.commit()
        assert excinfo.value.retryable is True
        # The loser was rolled back; none of its writes landed.
        assert not t2.active
        assert (
            database.execute_sql(
                "select qty from items where item_id = 7"
            ).rows[0]["qty"]
            == 111
        )
        assert database.mvcc_stats()["write_conflicts"] == 1

    def test_disjoint_writers_both_commit(self):
        database = make_database(mvcc=True)
        t1 = database.begin()
        t2 = database.begin()
        with database.using(t1):
            database.execute_update_sql(
                "update items set qty = 111 where item_id = 1"
            )
        with database.using(t2):
            database.execute_update_sql(
                "update items set qty = 222 where item_id = 2"
            )
        t1.commit()
        t2.commit()
        rows = {
            row["item_id"]: row["qty"]
            for row in database.execute_sql(
                "select item_id, qty from items where item_id <= 2"
            ).rows
        }
        assert rows[1] == 111 and rows[2] == 222
        assert database.mvcc_stats()["write_conflicts"] == 0

    def test_autocommit_update_defeats_open_transaction(self):
        database = make_database(mvcc=True)
        txn = database.begin()
        with database.using(txn):
            database.execute_update_sql(
                "update items set qty = 5 where item_id = 9"
            )
        with database.using(None):
            database.execute_update_sql(
                "update items set qty = 6 where item_id = 9"
            )
        with pytest.raises(SerializationError):
            txn.commit()
        assert (
            database.execute_sql(
                "select qty from items where item_id = 9"
            ).rows[0]["qty"]
            == 6
        )


class TestVacuum:
    def test_open_snapshot_pins_versions_until_closed(self):
        database = make_database(mvcc=True)
        created_before = database.mvcc_stats()["versions_created"]
        snap = database.snapshot()
        for value in (1, 2, 3):
            database.execute_update_sql(
                f"update items set qty = {value} where item_id < 8"
            )
        stats = database.mvcc_stats()
        assert stats["versions_created"] - created_before == 24
        # The snapshot pins the horizon: vacuum reclaims nothing yet.
        assert database.vacuum() == 0
        assert (
            snap.execute(
                "select qty from items where item_id = 0"
            ).rows[0]["qty"]
            == 10
        )
        snap.close()  # triggers vacuum
        stats = database.mvcc_stats()
        assert stats["versions_reclaimed"] >= 24
        assert stats["undo_entries"] == 0

    def test_vacuum_without_mvcc_is_a_noop(self):
        database = make_database(mvcc=False)
        assert database.vacuum() == 0
        assert database.mvcc_stats() == {"enabled": False}


class TestConnectionRetry:
    """run_transaction: first-committer-wins losses retried to success."""

    @staticmethod
    def _build() -> Engine:
        return (
            Engine.builder()
            .database(make_database(mvcc=True))
            .network(FAST_LOCAL)
            .build()
        )

    def test_run_transaction_retries_conflicts_to_success(self):
        engine = self._build()
        database = engine.database
        connection = engine.connect()
        attempts = []

        def work(conn):
            attempts.append(1)
            conn.execute_update(
                "update items set qty = 42 where item_id = 4"
            )
            if len(attempts) == 1:
                # A rival commits the same row mid-transaction: our first
                # COMMIT must lose, roll back, and be retried.
                rival = database.begin()
                with database.using(rival):
                    database.execute_update_sql(
                        "update items set qty = 41 where item_id = 4"
                    )
                rival.commit()

        connection.run_transaction(work)
        assert len(attempts) == 2
        assert (
            connection.execute_query(
                "select qty from items where item_id = 4"
            ).rows[0]["qty"]
            == 42
        )
        assert database.mvcc_stats()["write_conflicts"] == 1

    def test_run_transaction_exhausts_max_attempts(self):
        engine = self._build()
        database = engine.database
        connection = engine.connect()

        def always_conflict(conn):
            conn.execute_update(
                "update items set qty = 1 where item_id = 0"
            )
            rival = database.begin()
            with database.using(rival):
                database.execute_update_sql(
                    "update items set qty = 2 where item_id = 0"
                )
            rival.commit()

        with pytest.raises(SerializationError):
            connection.run_transaction(always_conflict, max_attempts=3)
        assert database.mvcc_stats()["write_conflicts"] == 3

    def test_commit_conflict_surfaces_through_connection(self):
        engine = self._build()
        database = engine.database
        connection = engine.connect()
        connection.begin()
        connection.execute_update(
            "update items set qty = 1 where item_id = 2"
        )
        rival = database.begin()
        with database.using(rival):
            database.execute_update_sql(
                "update items set qty = 2 where item_id = 2"
            )
        rival.commit()
        with pytest.raises(SerializationError):
            connection.commit()
        # The connection is back in autocommit: it can run a new txn.
        assert connection._txn is None
        connection.begin()
        connection.execute_update(
            "update items set qty = 3 where item_id = 2"
        )
        connection.commit()
        assert (
            connection.execute_query(
                "select qty from items where item_id = 2"
            ).rows[0]["qty"]
            == 3
        )

    def test_two_connections_read_under_their_own_context(self):
        """Each connection's exchanges are scoped to *its* transaction even
        though the server executes them one at a time."""
        engine = self._build()
        first = engine.connect()
        second = engine.connect()
        first.begin()
        first.execute_update(
            "update items set label = 'mine' where item_id = 6"
        )
        sql = "select label from items where item_id = 6"
        assert first.execute_query(sql).rows[0]["label"] == "mine"
        assert second.execute_query(sql).rows[0]["label"] == "item6"
        first.commit()
        assert second.execute_query(sql).rows[0]["label"] == "mine"


class TestFaultIntegration:
    def test_serialization_counters_live_outside_the_fault_invariant(self):
        database = make_database(mvcc=True)
        engine = (
            Engine.builder()
            .database(database)
            .network(FAST_LOCAL)
            .fault_rate(0.2, seed=13)
            .build()
        )
        connection = engine.connect()

        def work(conn):
            conn.execute_update(
                "update items set qty = 9 where item_id = 11"
            )
            if database.mvcc_stats()["write_conflicts"] == 0:
                rival = database.begin()
                with database.using(rival):
                    database.execute_update_sql(
                        "update items set qty = 8 where item_id = 11"
                    )
                rival.commit()

        connection.run_transaction(work)
        stats = engine.stats()["faults"]
        assert stats["serialization_conflicts"] >= 1
        assert stats["serialization_retries"] >= 1
        assert stats["injected"] == (
            stats["retries"] + stats["exhausted"] + stats["ambiguous"]
        )

    def test_delivered_fault_on_mvcc_commit_is_ambiguous(self):
        """A delivered fault on COMMIT's response leaves the client unsure —
        but the server-side commit already applied (MVCC commit succeeded
        before the network ate the acknowledgement)."""
        database = make_database(mvcc=True)
        engine = (
            Engine.builder().database(database).network(FAST_LOCAL).build()
        )
        connection = engine.connect()
        connection.begin()
        connection.execute_update(
            "update items set qty = 55 where item_id = 13"
        )
        # Arm the injector only now, so the delivered drop (reply lost
        # after the server executed) lands exactly on the COMMIT.
        policy = FaultPolicy(
            rate=1.0, seed=3, kinds=("drop",), delivered_fraction=1.0
        )
        connection.faults = policy
        connection.retries = RetryPolicy(max_attempts=2)
        with pytest.raises(AmbiguousCommitError):
            connection.commit()
        # Server-side truth: the commit applied.
        assert (
            database.execute_sql(
                "select qty from items where item_id = 13"
            ).rows[0]["qty"]
            == 55
        )
        stats = policy.stats
        assert stats.ambiguous >= 1
        assert stats.injected == (
            stats.retries + stats.exhausted + stats.ambiguous
        )


class TestRecovery:
    def test_recovered_mvcc_database_matches_live_visible_state(self):
        database = make_database(mvcc=True, wal=True)
        run_serial_workload(database, seed=7)
        # One aborted transaction for good measure: only its AbortRecord
        # is logged (deferred-apply writes never hit the log).
        txn = database.begin()
        database.execute_update_sql(
            "update items set qty = 0 where item_id >= 0"
        )
        txn.rollback()
        recovered = Database.recover(database.wal, mvcc=True)
        assert recovered.mvcc_enabled
        assert table_rows(recovered) == table_rows(database)
        # Commit timestamps are a pure commit-order counter re-derived from
        # the committed prefix; the recovered database keeps versioning.
        assert recovered.mvcc_stats()["commit_ts"] > 0
        with recovered.snapshot() as snap:
            recovered.execute_update_sql(
                "update items set qty = 1234 where item_id = 0"
            )
            assert (
                snap.execute(
                    "select qty from items where item_id = 0"
                ).rows[0]["qty"]
                != 1234
            )

    def test_engine_stats_surface_mvcc_counters(self):
        engine = (
            Engine.builder()
            .database(make_database(mvcc=False))
            .network(FAST_LOCAL)
            .mvcc()
            .build()
        )
        with engine.database.snapshot():
            engine.database.execute_update_sql(
                "update items set qty = 3 where item_id = 1"
            )
        stats = engine.stats()["mvcc"]
        assert stats["enabled"] is True
        assert stats["snapshots_taken"] == 1
        assert stats["versions_created"] == 1
