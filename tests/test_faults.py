"""Fault injection, retry policies, and the convergence property.

The centerpiece: a seeded fault-injected workload, with retries, must
produce results row-identical to a fault-free run of the same workload —
every injected fault is either retried or surfaced, never silently lost.
Extra seeds can be supplied via the ``FAULT_SEEDS`` environment variable
(space-separated ints), which is how ``make test-faults`` widens the sweep.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.api.engine import Engine
from repro.db.database import Database
from repro.db.schema import Column, ColumnType
from repro.net.connection import SimulatedConnection
from repro.net.faults import (
    AmbiguousCommitError,
    ConnectionDroppedError,
    FaultError,
    FaultPolicy,
    FaultStats,
    RequestTimeoutError,
    RetryPolicy,
    TransientServerError,
)
from repro.net.network import FAST_LOCAL

SEEDS = [0, 7, 13] + [
    int(token) for token in os.environ.get("FAULT_SEEDS", "").split()
]


def make_database() -> Database:
    database = Database()
    database.create_table(
        "items",
        [
            Column("item_id", ColumnType.INT),
            Column("label", ColumnType.STRING, width=12),
            Column("grp", ColumnType.INT),
        ],
        primary_key="item_id",
    )
    database.insert(
        "items",
        [
            {"item_id": i, "label": f"item{i}", "grp": i % 3}
            for i in range(20)
        ],
    )
    return database


class TestFaultPolicy:
    def test_same_seed_same_fault_sequence(self):
        def sequence(policy):
            out = []
            for _ in range(200):
                fault = policy.inject("query", 0.001)
                out.append(None if fault is None else fault.kind)
            return out

        first = sequence(FaultPolicy(0.3, seed=42))
        second = sequence(FaultPolicy(0.3, seed=42))
        assert first == second
        policy = FaultPolicy(0.3, seed=42)
        before = sequence(policy)
        policy.reset()
        assert sequence(policy) == before
        assert sequence(FaultPolicy(0.3, seed=43)) != first

    def test_rate_zero_never_faults_rate_one_always(self):
        never = FaultPolicy(0.0, seed=1)
        assert all(never.inject("query", 0.001) is None for _ in range(50))
        always = FaultPolicy(1.0, seed=1)
        assert all(
            always.inject("query", 0.001) is not None for _ in range(50)
        )
        assert always.stats.injected == 50

    def test_kind_counters_and_costs(self):
        timeouts = FaultPolicy(
            1.0, seed=0, kinds=("timeout",), timeout_seconds=0.25
        )
        fault = timeouts.inject("query", 0.001)
        assert isinstance(fault, RequestTimeoutError)
        assert fault.cost == 0.25 and not fault.delivered
        # Without an explicit timeout the client burns 4 round trips.
        assert FaultPolicy(1.0, kinds=("timeout",)).inject(
            "query", 0.01
        ).cost == pytest.approx(0.04)
        drop = FaultPolicy(1.0, kinds=("drop",)).inject("update", 0.01)
        assert isinstance(drop, ConnectionDroppedError)
        assert drop.cost == pytest.approx(0.01)
        server = FaultPolicy(1.0, kinds=("server_error",)).inject(
            "update", 0.01
        )
        assert isinstance(server, TransientServerError)
        assert timeouts.stats.timeouts == 1

    def test_delivered_fraction_marks_drops_only(self):
        policy = FaultPolicy(
            1.0, seed=3, kinds=("drop",), delivered_fraction=1.0
        )
        fault = policy.inject("update", 0.01)
        assert fault.delivered and policy.stats.delivered == 1
        # Timeouts are always request-path, whatever the fraction says.
        policy = FaultPolicy(
            1.0, seed=3, kinds=("timeout",), delivered_fraction=1.0
        )
        assert not policy.inject("update", 0.01).delivered

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultPolicy(1.5)
        with pytest.raises(ValueError, match="at least one"):
            FaultPolicy(0.5, kinds=())
        with pytest.raises(ValueError, match="unknown fault kinds"):
            FaultPolicy(0.5, kinds=("timeout", "cosmic_ray"))
        with pytest.raises(ValueError, match="at least 1"):
            RetryPolicy(0)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            max_attempts=10,
            base_delay=1.0,
            multiplier=2.0,
            max_delay=5.0,
            jitter=0.0,
        )
        delays = [policy.delay(attempt) for attempt in range(1, 6)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=9)
        delays = [policy.delay(1) for _ in range(50)]
        assert all(0.1 <= d <= 0.15 for d in delays)
        policy.reset()
        assert [policy.delay(1) for _ in range(50)] == delays


class TestSyncFaultPaths:
    def faulty_connection(self, database=None, *, faults, retries=None):
        return SimulatedConnection(
            database or make_database(),
            FAST_LOCAL,
            faults=faults,
            retries=retries,
        )

    def test_request_path_fault_retried_transparently(self):
        connection = self.faulty_connection(
            faults=FaultPolicy(0.5, seed=1),
            retries=RetryPolicy(max_attempts=20),
        )
        for i in range(20):
            result = connection.execute_query(
                f"select * from items where item_id = {i}"
            )
            assert result.cardinality == 1
        stats = connection.faults.stats
        assert stats.injected > 0
        assert stats.retries == stats.injected
        assert stats.exhausted == 0 and stats.ambiguous == 0

    def test_exhausted_retries_surface_the_fault(self):
        connection = self.faulty_connection(
            faults=FaultPolicy(1.0, seed=0, kinds=("server_error",)),
            retries=RetryPolicy(max_attempts=3),
        )
        with pytest.raises(TransientServerError):
            connection.execute_query("select * from items")
        stats = connection.faults.stats
        assert stats.injected == 3
        assert stats.retries == 2 and stats.exhausted == 1

    def test_no_retry_policy_surfaces_first_fault(self):
        connection = self.faulty_connection(
            faults=FaultPolicy(
                1.0, kinds=("timeout",), timeout_seconds=0.5
            )
        )
        with pytest.raises(RequestTimeoutError):
            connection.execute_query("select * from items")
        # The failed exchange still charged the virtual clock.
        assert connection.elapsed == pytest.approx(0.5)
        assert connection.faults.stats.exhausted == 1

    def test_backoff_time_charged_to_virtual_clock(self):
        connection = self.faulty_connection(
            faults=FaultPolicy(
                1.0, kinds=("timeout",), timeout_seconds=0.5
            ),
            retries=RetryPolicy(
                max_attempts=2, base_delay=0.125, jitter=0.0
            ),
        )
        with pytest.raises(RequestTimeoutError):
            connection.execute_query("select * from items")
        # Two timed-out attempts plus one backoff sleep, all virtual.
        assert connection.elapsed == pytest.approx(0.5 + 0.125 + 0.5)
        assert connection.faults.stats.backoff_seconds == pytest.approx(0.125)

    def test_delivered_write_fault_is_ambiguous_not_retried(self):
        database = make_database()
        connection = self.faulty_connection(
            database,
            faults=FaultPolicy(
                1.0, kinds=("drop",), delivered_fraction=1.0
            ),
            retries=RetryPolicy(),
        )
        with pytest.raises(AmbiguousCommitError):
            connection.execute_update(
                "update items set label = 'done' where item_id = 1"
            )
        # The server *did* execute the write; only the reply was lost.
        assert database.table("items").lookup_pk(1)["label"] == "done"
        assert connection.faults.stats.ambiguous == 1
        assert connection.faults.stats.retries == 0

    def test_delivered_commit_fault_is_ambiguous(self):
        database = make_database()
        connection = SimulatedConnection(database, FAST_LOCAL)
        connection.begin()
        connection.execute_update(
            "update items set label = 'committed' where item_id = 2"
        )
        # Arm the fault injector only for the COMMIT exchange.
        connection.faults = FaultPolicy(
            1.0, kinds=("drop",), delivered_fraction=1.0
        )
        connection.retries = RetryPolicy()
        with pytest.raises(AmbiguousCommitError):
            connection.commit()
        # In-doubt on the client, but committed on the server.
        assert not database.in_transaction
        assert database.txn_stats.committed == 1
        assert database.table("items").lookup_pk(2)["label"] == "committed"

    def test_exhausted_commit_fault_keeps_transaction_commitable(self):
        """A request-path COMMIT fault never reached the server, so the
        transaction must stay open on both ends — dropping the client's
        reference would wedge the single-writer server forever."""
        database = make_database()
        connection = SimulatedConnection(database, FAST_LOCAL)
        connection.begin()
        connection.execute_update(
            "update items set label = 'pending' where item_id = 4"
        )
        connection.faults = FaultPolicy(1.0, kinds=("timeout",))
        with pytest.raises(RequestTimeoutError):
            connection.commit()
        assert connection.in_transaction
        assert database.in_transaction
        # Once the fault clears, the same transaction still commits.
        connection.faults = None
        connection.commit()
        assert not database.in_transaction
        assert database.table("items").lookup_pk(4)["label"] == "pending"

    def test_exhausted_commit_fault_then_rollback_releases_server(self):
        database = make_database()
        connection = SimulatedConnection(database, FAST_LOCAL)
        connection.begin()
        connection.execute_update(
            "update items set label = 'doomed' where item_id = 5"
        )
        connection.faults = FaultPolicy(1.0, kinds=("timeout",))
        with pytest.raises(RequestTimeoutError):
            connection.commit()
        # rollback() (not fault-injected) releases the server transaction,
        # undoing the in-doubt write; new transactions work again.
        connection.rollback()
        assert not database.in_transaction
        assert database.table("items").lookup_pk(5)["label"] == "item5"
        database.begin().rollback()

    def test_exhausted_commit_fault_then_close_releases_server(self):
        database = make_database()
        connection = SimulatedConnection(database, FAST_LOCAL)
        connection.begin()
        connection.execute_update(
            "update items set label = 'doomed' where item_id = 6"
        )
        connection.faults = FaultPolicy(1.0, kinds=("timeout",))
        with pytest.raises(RequestTimeoutError):
            connection.commit()
        connection.close()
        assert not database.in_transaction
        assert database.table("items").lookup_pk(6)["label"] == "item6"

    def test_delivered_read_fault_is_retryable(self):
        connection = self.faulty_connection(
            faults=FaultPolicy(
                0.5, seed=5, kinds=("drop",), delivered_fraction=1.0
            ),
            retries=RetryPolicy(max_attempts=20),
        )
        for _ in range(10):
            result = connection.execute_query("select * from items")
            assert result.cardinality == 20
        stats = connection.faults.stats
        assert stats.delivered > 0 and stats.ambiguous == 0


class TestConvergence:
    """A retried faulty run must end row-identical to a fault-free run."""

    OPS = 40

    def run_workload(self, connection, *, reissue: bool) -> list:
        outputs = []
        for i in range(self.OPS):
            if i % 4 == 3:
                sql = (
                    f"update items set grp = {i % 5} "
                    f"where item_id = {i % 20}"
                )
                run = lambda: connection.execute_update(sql)
            else:
                sql = f"select * from items where grp = {i % 3}"
                run = lambda: sorted(
                    connection.execute_query(sql).rows,
                    key=lambda row: row["item_id"],
                )
            while True:
                try:
                    outputs.append(run())
                    break
                except FaultError:
                    # Request-path fault surfaced after retries ran out: the
                    # server never executed it, so the application may
                    # safely re-issue.
                    if not reissue:
                        raise
        return outputs

    @pytest.mark.parametrize("seed", SEEDS)
    def test_faulty_run_converges_to_fault_free_run(self, seed):
        clean_engine = Engine.builder().database(make_database()).build()
        faulty_engine = (
            Engine.builder()
            .database(make_database())
            .fault_rate(0.3, seed=seed)
            .retries(RetryPolicy(max_attempts=3, seed=seed))
            .build()
        )
        clean = self.run_workload(clean_engine.connect(), reissue=False)
        faulty = self.run_workload(faulty_engine.connect(), reissue=True)
        assert faulty == clean
        clean_rows = [
            dict(r) for r in clean_engine.database.table("items").rows
        ]
        faulty_rows = [
            dict(r) for r in faulty_engine.database.table("items").rows
        ]
        assert faulty_rows == clean_rows
        # Accounting invariant: every injected fault was either retried or
        # surfaced — nothing vanished.
        stats = faulty_engine.faults.stats
        assert stats.injected > 0, "seeded run injected no faults"
        assert stats.injected == stats.retries + stats.exhausted
        assert stats.ambiguous == 0
        # The faulty run paid for its faults in virtual time.
        assert (
            faulty_engine.stats()["faults"]["injected"] == stats.injected
        )

    def test_fault_free_engine_reports_zero_fault_stats(self):
        engine = Engine.builder().database(make_database()).build()
        assert engine.stats()["faults"] == FaultStats().as_dict()


class TestAsyncFaultPaths:
    def test_async_request_faults_retry_and_converge(self):
        async def scenario():
            engine = (
                Engine.builder()
                .database(make_database())
                .fault_rate(0.5, seed=2)
                .retries(RetryPolicy(max_attempts=30))
                .build()
            )
            conn = engine.aio().connect()
            results = await asyncio.gather(
                *(
                    conn.execute(
                        "select * from items where item_id = ?", (i,)
                    )
                    for i in range(10)
                )
            )
            assert [r.cardinality for r in results] == [1] * 10
            stats = engine.faults.stats
            assert stats.injected > 0
            assert stats.injected == stats.retries + stats.exhausted
            assert stats.exhausted == 0

        asyncio.run(scenario())

    def test_async_delivered_write_fault_is_ambiguous(self):
        async def scenario():
            database = make_database()
            engine = (
                Engine.builder()
                .database(database)
                .faults(
                    FaultPolicy(
                        1.0, kinds=("drop",), delivered_fraction=1.0
                    )
                )
                .retries(RetryPolicy())
                .build()
            )
            conn = engine.aio().connect()
            with pytest.raises(AmbiguousCommitError):
                await conn.execute_update(
                    "update items set label = 'async' where item_id = 3"
                )
            assert database.table("items").lookup_pk(3)["label"] == "async"
            assert engine.faults.stats.ambiguous == 1

        asyncio.run(scenario())

    def test_async_exhausted_commit_fault_keeps_transaction(self):
        """Async mirror of the sync rule: a request-path COMMIT fault
        leaves the transaction open for rollback, not silently dropped."""

        async def scenario():
            database = make_database()
            engine = Engine.builder().database(database).build()
            conn = engine.aio().connect()
            await conn.begin()
            await conn.execute_update(
                "update items set label = 'pending' where item_id = 7"
            )
            conn.raw.faults = FaultPolicy(1.0, kinds=("timeout",))
            with pytest.raises(RequestTimeoutError):
                await conn.commit()
            assert database.in_transaction
            conn.raw.faults = None
            await conn.rollback()
            assert not database.in_transaction
            assert database.table("items").lookup_pk(7)["label"] == "item7"

        asyncio.run(scenario())

    def test_async_exhausted_fault_charges_clock(self):
        async def scenario():
            engine = (
                Engine.builder()
                .database(make_database())
                .faults(
                    FaultPolicy(
                        1.0, kinds=("timeout",), timeout_seconds=0.5
                    )
                )
                .retries(RetryPolicy(max_attempts=1))
                .build()
            )
            conn = engine.aio().connect()
            before = conn.elapsed
            with pytest.raises(RequestTimeoutError):
                await conn.execute("select * from items")
            assert conn.elapsed - before == pytest.approx(0.5)

        asyncio.run(scenario())
