"""Unit tests for the client cache and the application runtime."""

import pytest

from repro.appsim.cache import CacheError, ClientCache
from repro.appsim.runtime import AppRuntime
from repro.net.network import FAST_LOCAL, SLOW_REMOTE
from repro.workloads import tpcds


class TestClientCache:
    def test_cache_by_column_and_lookup(self):
        cache = ClientCache()
        cached = cache.cache_by_column(
            [{"id": 1, "v": "a"}, {"id": 2, "v": "b"}], "id"
        )
        assert cached == 2
        assert cache.lookup(2, "id")["v"] == "b"
        assert cache.lookup(3, "id") is None
        assert cache.hits == 1 and cache.lookups == 2

    def test_rows_with_null_keys_are_skipped(self):
        cache = ClientCache()
        cached = cache.cache_by_column([{"id": None, "v": 1}, {"id": 2}], "id")
        assert cached == 1

    def test_lookup_in_unknown_region_raises(self):
        with pytest.raises(CacheError, match="never populated"):
            ClientCache().lookup(1, "missing")

    def test_grouped_cache(self):
        cache = ClientCache()
        rows = [{"k": 1, "v": i} for i in range(3)] + [{"k": 2, "v": 9}]
        cache.cache_groups_by_column(rows, "k", "groups")
        assert len(cache.lookup_group(1, "groups")) == 3
        assert cache.lookup_group(5, "groups") == []

    def test_region_management(self):
        cache = ClientCache()
        cache.cache_by_column([{"id": 1}], "id", region="r1")
        assert cache.has_region("r1")
        assert cache.region_size("r1") == 1
        assert cache.region_size("other") == 0
        cache.clear()
        assert not cache.has_region("r1")

    def test_entity_objects_can_be_cached(self, orders_runtime):
        orders = orders_runtime.orm.load_all("Order")
        cache = ClientCache()
        cached = cache.cache_by_column(orders, "o_id")
        assert cached == len(orders)
        assert cache.lookup(orders[0].o_id, "o_id") is orders[0]


class TestAppRuntime:
    def test_execute_query_charges_the_clock(self, slow_orders_runtime):
        rt = slow_orders_runtime
        rt.reset()
        rows = rt.execute_query("select * from customer")
        assert len(rows) == 50
        assert rt.elapsed >= SLOW_REMOTE.round_trip_seconds

    def test_work_charges_statement_cost(self, orders_runtime):
        rt = orders_runtime
        rt.reset()
        rt.work(1000)
        assert rt.elapsed == pytest.approx(1000 * rt.statement_cost)
        assert rt.statements_executed == 1000
        with pytest.raises(ValueError):
            rt.work(-1)

    def test_prefetch_and_lookup(self, orders_runtime):
        rt = orders_runtime
        rt.reset()
        cached = rt.prefetch("customer", "c_customer_sk")
        assert cached == 50
        row = rt.lookup(1, "c_customer_sk")
        assert row["c_customer_sk"] == 1

    def test_prefetch_is_idempotent(self, orders_runtime):
        rt = orders_runtime
        rt.reset()
        rt.prefetch("customer", "c_customer_sk")
        queries = rt.connection.stats.queries
        again = rt.prefetch("customer", "c_customer_sk")
        assert again == 0
        assert rt.connection.stats.queries == queries

    def test_prefetch_group_and_lookup_group(self, orders_runtime):
        rt = orders_runtime
        rt.reset()
        rt.prefetch_group("orders", "o_customer_sk")
        group = rt.lookup_group(1, "orders.o_customer_sk")
        assert all(row["o_customer_sk"] == 1 for row in group)
        # Grouped prefetch is also idempotent.
        assert rt.prefetch_group("orders", "o_customer_sk") == 0

    def test_execute_update_round_trips(self, orders_runtime):
        rt = orders_runtime
        rt.reset()
        changed = rt.execute_update(
            "update customer set c_birth_year = 2000 where c_customer_sk = ?", (1,)
        )
        assert changed == 1
        assert rt.connection.stats.round_trips == 1

    def test_measure_resets_state_between_runs(self, orders_runtime):
        rt = orders_runtime

        def program(runtime):
            runtime.execute_query("select * from customer")
            return "done"

        first = rt.measure(program)
        second = rt.measure(program)
        assert first.result == "done"
        assert first.elapsed_seconds == pytest.approx(second.elapsed_seconds)
        assert first.queries == second.queries == 1

    def test_measurement_counters(self, orders_runtime):
        rt = orders_runtime

        def program(runtime):
            rows = runtime.execute_query("select * from orders")
            runtime.work(len(rows))
            return len(rows)

        measurement = rt.measure(program)
        assert measurement.result == 200
        assert measurement.rows_transferred == 200
        assert measurement.statements_executed == 200
        assert measurement.bytes_transferred > 0
