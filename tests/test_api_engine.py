"""The `repro.api` facade: EngineBuilder wiring, Engine services, connect()."""

from __future__ import annotations

import pytest

from repro.api import Engine, EngineClosedError, EngineConfigError, connect
from repro.net.connection import ConnectionClosedError
from repro.core.catalog import catalog_for_network
from repro.core.optimizer import CobraOptimizer
from repro.db.database import Database
from repro.db.schema import Column, ColumnType
from repro.net.network import FAST_LOCAL, SLOW_REMOTE
from repro.workloads import tpcds
from repro.workloads.programs import P0_SOURCE


@pytest.fixture(scope="module")
def orders_engine() -> Engine:
    return (
        Engine.builder()
        .orders_workload(num_orders=300, num_customers=60)
        .network("slow-remote")
        .build()
    )


class TestEngineBuilder:
    def test_builder_is_fluent(self):
        builder = Engine.builder()
        assert builder.network("fast-local") is builder
        assert builder.amortization(2.0) is builder

    def test_orders_workload_wires_database_and_registry(self, orders_engine):
        assert "orders" in orders_engine.database.tables
        assert "customer" in orders_engine.database.tables
        assert orders_engine.registry is not None
        assert orders_engine.registry.entity("Order").table == "orders"

    def test_network_preset_resolution(self, orders_engine):
        assert orders_engine.network == SLOW_REMOTE

    def test_parameters_derived_from_network(self, orders_engine):
        assert orders_engine.parameters == catalog_for_network("slow-remote")

    def test_explicit_parameters_override_network(self):
        fast = catalog_for_network("fast-local")
        engine = (
            Engine.builder()
            .network("slow-remote")
            .cost_parameters(fast)
            .build()
        )
        assert engine.parameters == fast

    def test_amortization_applied(self):
        engine = Engine.builder().network("fast-local").amortization(4.0).build()
        assert engine.parameters.amortization_factor == 4.0

    def test_unknown_network_preset_raises(self):
        with pytest.raises(EngineConfigError, match="unknown network preset"):
            Engine.builder().network("warp-speed").build()

    def test_wilos_workload(self):
        engine = Engine.builder().wilos_workload(scale=60).build()
        assert "activity" in engine.database.tables

    def test_default_build_is_empty_database(self):
        engine = Engine.builder().build()
        assert engine.database.tables == {}
        assert engine.network == FAST_LOCAL


class TestEngineServices:
    def test_cursor_round_trip(self, orders_engine):
        with orders_engine.cursor() as cursor:
            cursor.execute("select * from orders where o_id = ?", (7,))
            row = cursor.fetchone()
        assert row["o_id"] == 7

    def test_connections_share_the_statement_cache(self, orders_engine):
        first = orders_engine.connect()
        second = orders_engine.connect()
        sql = "select * from orders where o_id = ?"
        first.execute_query(sql, (1,))
        second.execute_query(sql, (2,))
        assert orders_engine.statement_cache_stats.hits >= 1

    def test_connect_returns_independent_clocks(self, orders_engine):
        first = orders_engine.connect()
        second = orders_engine.connect()
        first.execute_query("select * from customer")
        assert first.elapsed > 0
        assert second.elapsed == 0

    def test_session_lazy_load(self, orders_engine):
        session = orders_engine.session()
        order = session.get("Order", 5)
        assert order is not None
        assert order.customer.entity_name == "Customer"

    def test_runtime_measures_programs(self, orders_engine):
        runtime = orders_engine.runtime()
        measurement = runtime.measure(
            lambda rt: len(rt.execute_query("select * from customer"))
        )
        assert measurement.result == 60
        assert measurement.queries == 1

    def test_prepare_exposes_prepared_statement(self, orders_engine):
        statement = orders_engine.prepare("select * from customer")
        assert statement.is_query
        assert statement is orders_engine.prepare("select * from customer")


class TestEngineOptimize:
    def test_optimize_matches_direct_optimizer(self):
        database = tpcds.build_orders_database(200, 40)
        registry = tpcds.build_registry()
        engine = connect(
            database=database, network="slow-remote", registry=registry
        )
        via_engine = engine.optimize(P0_SOURCE)
        direct = CobraOptimizer(
            database, catalog_for_network("slow-remote"), registry=registry
        ).optimize(P0_SOURCE)
        assert via_engine.primary_choice() == direct.primary_choice()
        assert via_engine.best_cost == pytest.approx(direct.best_cost)

    def test_optimizer_overrides_pass_through(self, orders_engine):
        optimizer = orders_engine.optimizer(max_passes=2)
        assert optimizer.max_passes == 2
        assert optimizer.registry is orders_engine.registry

    def test_heuristic_rewrite(self, orders_engine):
        outcome = orders_engine.heuristic_rewrite(P0_SOURCE)
        assert outcome.rewritten_source


class TestEngineLifecycle:
    def _fresh_engine(self) -> Engine:
        return (
            Engine.builder()
            .orders_workload(num_orders=60, num_customers=12)
            .network("fast-local")
            .build()
        )

    def test_connection_context_manager(self):
        engine = self._fresh_engine()
        with engine.connect() as connection:
            rows = connection.execute_query("select * from customer").rows
            assert rows
        assert connection.closed

    def test_engine_close_closes_handed_out_connections(self):
        engine = self._fresh_engine()
        first = engine.connect()
        second = engine.connect()
        engine.close()
        assert engine.closed
        assert first.closed and second.closed
        with pytest.raises(ConnectionClosedError):
            first.execute_query("select * from customer")

    def test_engine_close_is_idempotent(self):
        engine = self._fresh_engine()
        engine.close()
        engine.close()
        assert engine.closed

    def test_closed_engine_refuses_new_resources(self):
        engine = self._fresh_engine()
        engine.close()
        with pytest.raises(EngineClosedError):
            engine.connect()
        with pytest.raises(EngineClosedError):
            engine.prepare("select * from customer")

    def test_engine_context_manager(self):
        engine = self._fresh_engine()
        with engine:
            connection = engine.connect()
        assert engine.closed and connection.closed

    def test_default_connection_closed_with_engine(self):
        engine = self._fresh_engine()
        cursor = engine.cursor()
        cursor.execute("select * from customer")
        engine.close()
        assert engine.connection.closed


class TestEngineStats:
    def test_stats_aggregate_cache_and_network_counters(self):
        engine = (
            Engine.builder()
            .orders_workload(num_orders=60, num_customers=12)
            .network("fast-local")
            .build()
        )
        connection = engine.connect()
        for key in (1, 2, 3):
            connection.execute_query(
                "select * from orders where o_id = ?", (key,)
            )
        with connection.pipeline() as pipe:
            pipe.execute("select * from orders where o_id = ?", (4,))
            pipe.execute("select * from orders where o_id = ?", (5,))
        stats = engine.stats()
        assert stats["statement_cache"]["misses"] == 1
        assert stats["statement_cache"]["hits"] >= 3
        assert stats["network"]["connections"] == 1
        assert stats["network"]["queries"] == 5
        assert stats["network"]["round_trips"] == 4  # 3 singles + 1 batch
        assert stats["network"]["batches"] == 1
        assert stats["network"]["rows_transferred"] == 5
        assert stats["database"]["queries_executed"] == 5

    def test_stats_sum_over_multiple_connections(self):
        engine = (
            Engine.builder()
            .orders_workload(num_orders=60, num_customers=12)
            .network("fast-local")
            .build()
        )
        for _ in range(3):
            engine.connect().execute_query("select * from customer")
        stats = engine.stats()
        assert stats["network"]["connections"] == 3
        assert stats["network"]["queries"] == 3

    def test_closed_connections_pruned_but_stats_retained(self):
        engine = (
            Engine.builder()
            .orders_workload(num_orders=60, num_customers=12)
            .network("fast-local")
            .build()
        )
        for _ in range(5):
            with engine.connect() as connection:
                connection.execute_query("select * from customer")
        # Churned connections are folded into the retired totals, so the
        # tracking list stays bounded while stats() remain complete.
        assert len(engine._connections) <= 1
        stats = engine.stats()
        assert stats["network"]["connections"] == 5
        assert stats["network"]["queries"] == 5


class TestConnect:
    def test_connect_defaults(self):
        engine = connect()
        assert engine.network == FAST_LOCAL
        assert isinstance(engine.database, Database)

    def test_connect_with_existing_database(self):
        database = Database()
        database.create_table("t", [Column("a", ColumnType.INT)])
        engine = connect(database=database, network=SLOW_REMOTE)
        assert engine.database is database
        assert engine.network == SLOW_REMOTE
