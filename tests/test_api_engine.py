"""The `repro.api` facade: EngineBuilder wiring, Engine services, connect()."""

from __future__ import annotations

import pytest

from repro.api import Engine, EngineConfigError, connect
from repro.core.catalog import catalog_for_network
from repro.core.optimizer import CobraOptimizer
from repro.db.database import Database
from repro.db.schema import Column, ColumnType
from repro.net.network import FAST_LOCAL, SLOW_REMOTE
from repro.workloads import tpcds
from repro.workloads.programs import P0_SOURCE


@pytest.fixture(scope="module")
def orders_engine() -> Engine:
    return (
        Engine.builder()
        .orders_workload(num_orders=300, num_customers=60)
        .network("slow-remote")
        .build()
    )


class TestEngineBuilder:
    def test_builder_is_fluent(self):
        builder = Engine.builder()
        assert builder.network("fast-local") is builder
        assert builder.amortization(2.0) is builder

    def test_orders_workload_wires_database_and_registry(self, orders_engine):
        assert "orders" in orders_engine.database.tables
        assert "customer" in orders_engine.database.tables
        assert orders_engine.registry is not None
        assert orders_engine.registry.entity("Order").table == "orders"

    def test_network_preset_resolution(self, orders_engine):
        assert orders_engine.network == SLOW_REMOTE

    def test_parameters_derived_from_network(self, orders_engine):
        assert orders_engine.parameters == catalog_for_network("slow-remote")

    def test_explicit_parameters_override_network(self):
        fast = catalog_for_network("fast-local")
        engine = (
            Engine.builder()
            .network("slow-remote")
            .cost_parameters(fast)
            .build()
        )
        assert engine.parameters == fast

    def test_amortization_applied(self):
        engine = Engine.builder().network("fast-local").amortization(4.0).build()
        assert engine.parameters.amortization_factor == 4.0

    def test_unknown_network_preset_raises(self):
        with pytest.raises(EngineConfigError, match="unknown network preset"):
            Engine.builder().network("warp-speed").build()

    def test_wilos_workload(self):
        engine = Engine.builder().wilos_workload(scale=60).build()
        assert "activity" in engine.database.tables

    def test_default_build_is_empty_database(self):
        engine = Engine.builder().build()
        assert engine.database.tables == {}
        assert engine.network == FAST_LOCAL


class TestEngineServices:
    def test_cursor_round_trip(self, orders_engine):
        with orders_engine.cursor() as cursor:
            cursor.execute("select * from orders where o_id = ?", (7,))
            row = cursor.fetchone()
        assert row["o_id"] == 7

    def test_connections_share_the_statement_cache(self, orders_engine):
        first = orders_engine.connect()
        second = orders_engine.connect()
        sql = "select * from orders where o_id = ?"
        first.execute_query(sql, (1,))
        second.execute_query(sql, (2,))
        assert orders_engine.statement_cache_stats.hits >= 1

    def test_connect_returns_independent_clocks(self, orders_engine):
        first = orders_engine.connect()
        second = orders_engine.connect()
        first.execute_query("select * from customer")
        assert first.elapsed > 0
        assert second.elapsed == 0

    def test_session_lazy_load(self, orders_engine):
        session = orders_engine.session()
        order = session.get("Order", 5)
        assert order is not None
        assert order.customer.entity_name == "Customer"

    def test_runtime_measures_programs(self, orders_engine):
        runtime = orders_engine.runtime()
        measurement = runtime.measure(
            lambda rt: len(rt.execute_query("select * from customer"))
        )
        assert measurement.result == 60
        assert measurement.queries == 1

    def test_prepare_exposes_prepared_statement(self, orders_engine):
        statement = orders_engine.prepare("select * from customer")
        assert statement.is_query
        assert statement is orders_engine.prepare("select * from customer")


class TestEngineOptimize:
    def test_optimize_matches_direct_optimizer(self):
        database = tpcds.build_orders_database(200, 40)
        registry = tpcds.build_registry()
        engine = connect(
            database=database, network="slow-remote", registry=registry
        )
        via_engine = engine.optimize(P0_SOURCE)
        direct = CobraOptimizer(
            database, catalog_for_network("slow-remote"), registry=registry
        ).optimize(P0_SOURCE)
        assert via_engine.primary_choice() == direct.primary_choice()
        assert via_engine.best_cost == pytest.approx(direct.best_cost)

    def test_optimizer_overrides_pass_through(self, orders_engine):
        optimizer = orders_engine.optimizer(max_passes=2)
        assert optimizer.max_passes == 2
        assert optimizer.registry is orders_engine.registry

    def test_heuristic_rewrite(self, orders_engine):
        outcome = orders_engine.heuristic_rewrite(P0_SOURCE)
        assert outcome.rewritten_source


class TestConnect:
    def test_connect_defaults(self):
        engine = connect()
        assert engine.network == FAST_LOCAL
        assert isinstance(engine.database, Database)

    def test_connect_with_existing_database(self):
        database = Database()
        database.create_table("t", [Column("a", ColumnType.INT)])
        engine = connect(database=database, network=SLOW_REMOTE)
        assert engine.database is database
        assert engine.network == SLOW_REMOTE
