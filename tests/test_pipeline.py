"""The pipelined batch context: many statements, one network round trip."""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.db.schema import Column, ColumnType
from repro.db.sqlparser import SQLSyntaxError
from repro.net.connection import (
    ConnectionClosedError,
    PipelineError,
    SimulatedConnection,
)
from repro.net.network import FAST_LOCAL, SLOW_REMOTE


def make_connection(network=SLOW_REMOTE) -> SimulatedConnection:
    database = Database()
    database.create_table(
        "items",
        [
            Column("item_id", ColumnType.INT),
            Column("label", ColumnType.STRING, width=12),
            Column("grp", ColumnType.INT),
        ],
        primary_key="item_id",
    )
    database.insert(
        "items",
        [
            {"item_id": i, "label": f"item{i}", "grp": i % 3}
            for i in range(30)
        ],
    )
    database.analyze()
    return SimulatedConnection(database, network)


class TestPipelineBatching:
    def test_batch_is_one_round_trip(self):
        connection = make_connection()
        with connection.pipeline() as pipe:
            for key in range(10):
                pipe.execute("select * from items where item_id = ?", (key,))
        assert connection.stats.round_trips == 1
        assert connection.stats.batches == 1
        assert connection.stats.queries == 10

    def test_batch_cheaper_than_sequential(self):
        sequential = make_connection()
        for key in range(10):
            sequential.execute_query(
                "select * from items where item_id = ?", (key,)
            )
        pipelined = make_connection()
        with pipelined.pipeline() as pipe:
            for key in range(10):
                pipe.execute("select * from items where item_id = ?", (key,))
        assert pipelined.elapsed < sequential.elapsed
        # 10 round trips collapse to 1: the saving is ~9 x CNRT.
        assert sequential.elapsed - pipelined.elapsed == pytest.approx(
            9 * SLOW_REMOTE.round_trip_seconds, rel=0.01
        )

    def test_results_in_queue_order(self):
        connection = make_connection()
        with connection.pipeline() as pipe:
            handles = [
                pipe.execute("select * from items where item_id = ?", (key,))
                for key in (7, 3, 11)
            ]
        assert [h.rows[0]["item_id"] for h in handles] == [7, 3, 11]
        assert all(h.rowcount == 1 for h in handles)

    def test_rows_match_sequential_execution(self):
        connection = make_connection()
        queries = [
            ("select * from items where grp = ?", (1,)),
            ("select grp, count(*) from items group by grp", ()),
            ("select * from items where item_id = ?", (4,)),
        ]
        expected = [
            make_connection().execute_query(sql, params).rows
            for sql, params in queries
        ]
        with connection.pipeline() as pipe:
            handles = [pipe.execute(sql, params) for sql, params in queries]
        assert [h.rows for h in handles] == expected

    def test_mixed_select_and_update(self):
        connection = make_connection()
        with connection.pipeline() as pipe:
            select = pipe.execute("select * from items where grp = 0")
            update = pipe.execute(
                "update items set label = 'x' where grp = ?", (0,)
            )
            after = pipe.execute("select * from items where label = 'x'")
        assert select.is_query and not update.is_query
        assert update.rows is None
        assert update.rowcount == 10
        # Statements execute server-side in queue order: the SELECT queued
        # after the UPDATE observes its writes.
        assert after.rowcount == 10
        assert connection.stats.round_trips == 1

    def test_update_rowcounts_accumulate_per_statement(self):
        connection = make_connection()
        with connection.pipeline() as pipe:
            handles = [
                pipe.execute(
                    "update items set grp = 9 where item_id = ?", (key,)
                )
                for key in (1, 2, 999)
            ]
        assert [h.rowcount for h in handles] == [1, 1, 0]


class TestPipelineLifecycle:
    def test_empty_pipeline_costs_nothing(self):
        connection = make_connection()
        with connection.pipeline():
            pass
        assert connection.stats.round_trips == 0
        assert connection.elapsed == 0.0

    def test_reading_before_flush_raises(self):
        connection = make_connection()
        pipe = connection.pipeline()
        handle = pipe.execute("select * from items")
        with pytest.raises(PipelineError, match="flushed"):
            handle.rows
        pipe.flush()
        assert len(handle.rows) == 30

    def test_exception_discards_pending_batch(self):
        connection = make_connection()
        with pytest.raises(RuntimeError):
            with connection.pipeline() as pipe:
                pipe.execute("update items set grp = 5 where item_id = 1")
                raise RuntimeError("abort")
        # Nothing was sent: no clock charge, no server-side effect.
        assert connection.elapsed == 0.0
        row = connection.database.execute_sql(
            "select * from items where item_id = 1"
        ).rows[0]
        assert row["grp"] == 1

    def test_flush_is_reusable(self):
        connection = make_connection()
        pipe = connection.pipeline()
        pipe.execute("select * from items where item_id = 1")
        pipe.flush()
        pipe.execute("select * from items where item_id = 2")
        pipe.flush()
        assert connection.stats.round_trips == 2
        assert pipe.flushes == 2

    def test_pipeline_on_closed_connection_raises(self):
        connection = make_connection()
        connection.close()
        with pytest.raises(ConnectionClosedError):
            connection.pipeline()


class TestPipelinePartialFailure:
    """A failing statement mid-batch: earlier results stay valid, the
    failing handle carries its own error, later handles are aborted."""

    def queue_three(self, pipe):
        good = pipe.execute("select * from items where item_id = ?", (1,))
        bad = pipe.execute("select * from items where item_id = ?", ())
        aborted = pipe.execute("select * from items where item_id = ?", (2,))
        return good, bad, aborted

    def test_results_before_failure_stay_valid(self):
        connection = make_connection()
        pipe = connection.pipeline()
        good, bad, aborted = self.queue_three(pipe)
        with pytest.raises(SQLSyntaxError, match="missing value"):
            pipe.flush()
        # The statement before the failure executed and its result stands.
        assert good.rows[0]["item_id"] == 1
        assert good.error is None

    def test_failing_handle_carries_its_own_error(self):
        connection = make_connection()
        pipe = connection.pipeline()
        _, bad, _ = self.queue_three(pipe)
        with pytest.raises(SQLSyntaxError):
            pipe.flush()
        assert isinstance(bad.error, SQLSyntaxError)
        # Reading results off the failed handle re-raises that error.
        with pytest.raises(SQLSyntaxError):
            bad.rows
        with pytest.raises(SQLSyntaxError):
            bad.rowcount

    def test_statements_after_failure_are_aborted(self):
        connection = make_connection()
        pipe = connection.pipeline()
        _, _, aborted = self.queue_three(pipe)
        with pytest.raises(SQLSyntaxError):
            pipe.flush()
        assert isinstance(aborted.error, PipelineError)
        with pytest.raises(PipelineError, match="aborted"):
            aborted.rows

    def test_failed_flush_still_charges_the_clock(self):
        connection = make_connection()
        pipe = connection.pipeline()
        self.queue_three(pipe)
        with pytest.raises(SQLSyntaxError):
            pipe.flush()
        # The batch went over the wire: one round trip, clock advanced.
        assert connection.stats.round_trips == 1
        assert connection.elapsed >= SLOW_REMOTE.round_trip_seconds

    def test_writes_before_failure_take_effect(self):
        connection = make_connection()
        pipe = connection.pipeline()
        update = pipe.execute(
            "update items set label = 'written' where item_id = ?", (5,)
        )
        pipe.execute("select * from items where item_id = ?", ())
        with pytest.raises(SQLSyntaxError):
            pipe.flush()
        assert update.rowcount == 1
        row = connection.database.table("items").lookup_pk(5)
        assert row["label"] == "written"

    def test_pipeline_reusable_after_partial_failure(self):
        connection = make_connection()
        pipe = connection.pipeline()
        self.queue_three(pipe)
        with pytest.raises(SQLSyntaxError):
            pipe.flush()
        handle = pipe.execute("select * from items where item_id = ?", (3,))
        pipe.flush()
        assert handle.rows[0]["item_id"] == 3
        assert handle.error is None

    def test_async_pipeline_partial_failure_semantics_match(self):
        import asyncio

        from repro.api.engine import Engine

        async def scenario():
            connection = make_connection()
            engine = Engine.builder().database(connection.database).build()
            conn = engine.aio().connect()
            pipe = conn.pipeline()
            good = pipe.execute("select * from items where item_id = ?", (1,))
            bad = pipe.execute("select * from items where item_id = ?", ())
            aborted = pipe.execute(
                "select * from items where item_id = ?", (2,)
            )
            with pytest.raises(SQLSyntaxError):
                await pipe.flush()
            assert good.rows[0]["item_id"] == 1
            assert isinstance(bad.error, SQLSyntaxError)
            assert isinstance(aborted.error, PipelineError)
            with pytest.raises(PipelineError):
                aborted.rowcount

        asyncio.run(scenario())


class TestExecutemanyPipelining:
    def test_executemany_is_one_round_trip(self):
        connection = make_connection()
        cursor = connection.cursor()
        cursor.executemany(
            "select * from items where item_id = ?",
            [(key,) for key in range(20)],
        )
        assert connection.stats.round_trips == 1
        assert connection.stats.queries == 20

    def test_executemany_update_rowcount_semantics_unchanged(self):
        connection = make_connection()
        cursor = connection.cursor()
        cursor.executemany(
            "update items set label = ? where item_id = ?",
            [("a", 1), ("b", 2), ("c", 999)],
        )
        assert cursor.rowcount == 2

    def test_executemany_select_retains_last_result(self):
        connection = make_connection()
        cursor = connection.cursor()
        cursor.executemany(
            "select * from items where item_id = ?", [(3,), (5,), (8,)]
        )
        rows = cursor.fetchall()
        assert [r["item_id"] for r in rows] == [8]
        assert cursor.description is not None

    def test_executemany_empty_sequence(self):
        connection = make_connection()
        cursor = connection.cursor()
        cursor.executemany("update items set grp = 0 where item_id = ?", [])
        assert cursor.rowcount == 0
        assert connection.stats.round_trips == 0


class TestConnectionLifecycle:
    def test_close_prevents_use(self):
        connection = make_connection()
        connection.close()
        assert connection.closed
        with pytest.raises(ConnectionClosedError):
            connection.execute_query("select * from items")
        with pytest.raises(ConnectionClosedError):
            connection.cursor()

    def test_close_is_idempotent(self):
        connection = make_connection()
        connection.close()
        connection.close()
        assert connection.closed

    def test_context_manager_closes(self):
        with make_connection() as connection:
            connection.execute_query("select * from items where item_id = 1")
        assert connection.closed


class TestSessionPrefetch:
    def _session(self):
        from repro.orm.session import Session
        from repro.workloads import tpcds

        database = tpcds.build_orders_database(
            num_orders=80, num_customers=20
        )
        registry = tpcds.build_registry()
        connection = SimulatedConnection(database, SLOW_REMOTE)
        return Session(registry, connection), connection

    def test_prefetch_batches_misses_into_one_round_trip(self):
        session, connection = self._session()
        orders = session.load_all("Order")
        before = connection.stats.round_trips
        fetched = session.prefetch(orders, "customer")
        assert fetched > 1
        # All misses shipped in a single pipelined round trip.
        assert connection.stats.round_trips == before + 1
        assert session.prefetches == 1

    def test_lazy_loads_after_prefetch_are_cache_hits(self):
        session, connection = self._session()
        orders = session.load_all("Order")
        session.prefetch(orders, "customer")
        round_trips = connection.stats.round_trips
        lazy_before = session.lazy_loads
        names = [order.customer.c_first_name for order in orders]
        assert all(names)
        assert connection.stats.round_trips == round_trips
        assert session.lazy_loads == lazy_before

    def test_prefetch_skips_cached_targets(self):
        session, connection = self._session()
        orders = session.load_all("Order")
        session.prefetch(orders, "customer")
        assert session.prefetch(orders, "customer") == 0
