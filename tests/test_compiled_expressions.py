"""Equivalence of compiled expression evaluation and the interpreter.

The compiled fast path (``Expression.compile``) must agree with the
tree-walking interpreter (``Expression.evaluate``) on every node type —
including NULL semantics, qualified/unqualified column fallback, ambiguity
errors, and unknown-function errors — and the compiled executor must return
exactly the rows of the interpreted executor on every query shape the
benchmarks use.
"""

from __future__ import annotations

import random

import pytest

from repro.db import algebra
from repro.db.executor import Executor
from repro.db.expressions import (
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Expression,
    ExpressionError,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    Not,
)
from repro.db.sqlparser import parse_sql

ROWS = [
    {"a": 3, "b": 10, "name": "ann", "maybe": None, "t.a": 3, "t.flag": True},
    {"a": None, "b": -2, "name": "BOB", "maybe": 7, "t.a": None, "t.flag": False},
    {"a": 0, "b": 0, "name": "", "maybe": 0, "t.a": 0, "t.flag": False},
]


def assert_equivalent(expression: Expression, row: dict) -> None:
    """Compiled and interpreted evaluation agree on value or error type."""
    try:
        expected = expression.evaluate(row)
        failed = None
    except Exception as exc:  # noqa: BLE001 - comparing failure modes
        expected, failed = None, type(exc)
    compiled = expression.compile()
    if failed is None:
        assert compiled(row) == expected
        assert type(compiled(row)) is type(expected)
    else:
        with pytest.raises(failed):
            compiled(row)


class TestNodeEquivalence:
    @pytest.mark.parametrize("value", [1, 1.5, "x", None, True, [1, 2]])
    def test_literal(self, value):
        for row in ROWS:
            assert_equivalent(Literal(value), row)

    def test_column_ref_bare(self):
        for row in ROWS:
            assert_equivalent(ColumnRef("a"), row)
            assert_equivalent(ColumnRef("name"), row)

    def test_column_ref_qualified_present(self):
        for row in ROWS:
            assert_equivalent(ColumnRef("a", "t"), row)

    def test_column_ref_qualified_falls_back_to_bare(self):
        # Qualifier "z" never matches; the bare key resolves.
        for row in ROWS:
            assert_equivalent(ColumnRef("b", "z"), row)

    def test_column_ref_suffix_fallback(self):
        # "flag" only exists as the qualified key "t.flag".
        for row in ROWS:
            assert_equivalent(ColumnRef("flag"), row)

    def test_column_ref_missing_raises_both_ways(self):
        for row in ROWS:
            assert_equivalent(ColumnRef("nope"), row)
            assert_equivalent(ColumnRef("nope", "t"), row)

    def test_column_ref_ambiguous_raises_both_ways(self):
        row = {"x.c": 1, "y.c": 2}
        assert_equivalent(ColumnRef("c"), row)

    @pytest.mark.parametrize(
        "op", ["+", "-", "*", "/", "%", "=", "==", "!=", "<>", "<", "<=", ">", ">="]
    )
    def test_binary_ops_including_nulls(self, op):
        operands = [
            (ColumnRef("a"), ColumnRef("b")),
            (ColumnRef("a"), Literal(2)),
            (Literal(7), ColumnRef("maybe")),
            (Literal(None), ColumnRef("b")),
            (ColumnRef("maybe"), Literal(None)),
        ]
        for left, right in operands:
            for row in ROWS:
                assert_equivalent(BinaryOp(op, left, right), row)

    def test_boolean_ops(self):
        a = BinaryOp(">", ColumnRef("b"), Literal(0))
        b = IsNull(ColumnRef("maybe"))
        c = BinaryOp("=", ColumnRef("name"), Literal("ann"))
        for row in ROWS:
            assert_equivalent(BooleanOp("and", (a, b)), row)
            assert_equivalent(BooleanOp("or", (a, b, c)), row)
            assert_equivalent(Not(a), row)

    def test_is_null_and_negation(self):
        for row in ROWS:
            assert_equivalent(IsNull(ColumnRef("maybe")), row)
            assert_equivalent(IsNull(ColumnRef("maybe"), negated=True), row)

    def test_in_list(self):
        for row in ROWS:
            assert_equivalent(InList(ColumnRef("a"), (0, 3, 9)), row)
            assert_equivalent(InList(ColumnRef("name"), ("ann", "BOB")), row)
            assert_equivalent(InList(ColumnRef("maybe"), ()), row)

    def test_in_list_unhashable_values(self):
        # frozenset conversion must fall back for unhashable members.
        expr = InList(Literal([1]), ([1], [2]))
        for row in ROWS:
            assert_equivalent(expr, row)

    def test_function_calls(self):
        for row in ROWS:
            assert_equivalent(FunctionCall("upper", (ColumnRef("name"),)), row)
            assert_equivalent(FunctionCall("lower", (ColumnRef("name"),)), row)
            assert_equivalent(FunctionCall("abs", (ColumnRef("b"),)), row)
            assert_equivalent(FunctionCall("length", (ColumnRef("name"),)), row)
            assert_equivalent(
                FunctionCall("coalesce", (ColumnRef("maybe"), Literal(9))), row
            )

    def test_unknown_function_raises_at_call_time(self):
        expr = FunctionCall("median", (ColumnRef("a"),))
        compiled = expr.compile()  # must not raise eagerly
        with pytest.raises(ExpressionError):
            compiled(ROWS[0])


class TestPropertyStyleEquivalence:
    """Randomly generated expression trees agree on randomly generated rows."""

    COLUMNS = ["a", "b", "maybe", "name"]

    def _random_expression(self, rng: random.Random, depth: int) -> Expression:
        if depth <= 0 or rng.random() < 0.3:
            if rng.random() < 0.5:
                return ColumnRef(rng.choice(self.COLUMNS))
            return Literal(rng.choice([None, 0, 1, 7, -3, "ann", 2.5]))
        choice = rng.randrange(6)
        if choice == 0:
            op = rng.choice(["+", "-", "*", "=", "!=", "<", ">="])
            return BinaryOp(
                op,
                self._random_expression(rng, depth - 1),
                self._random_expression(rng, depth - 1),
            )
        if choice == 1:
            return BooleanOp(
                rng.choice(["and", "or"]),
                (
                    self._random_expression(rng, depth - 1),
                    self._random_expression(rng, depth - 1),
                ),
            )
        if choice == 2:
            return Not(self._random_expression(rng, depth - 1))
        if choice == 3:
            return IsNull(
                self._random_expression(rng, depth - 1),
                negated=rng.random() < 0.5,
            )
        if choice == 4:
            return InList(
                self._random_expression(rng, depth - 1), (0, 1, "ann", None)
            )
        return FunctionCall(
            "coalesce",
            (
                self._random_expression(rng, depth - 1),
                self._random_expression(rng, depth - 1),
            ),
        )

    def _random_row(self, rng: random.Random) -> dict:
        return {
            "a": rng.choice([None, 0, 1, 5, -2]),
            "b": rng.choice([None, 0, 3, 9]),
            "maybe": rng.choice([None, 2]),
            "name": rng.choice(["ann", "BOB", ""]),
        }

    def test_random_trees_match_interpreter(self):
        rng = random.Random(20260728)
        for _ in range(300):
            expression = self._random_expression(rng, depth=4)
            for _ in range(5):
                assert_equivalent(expression, self._random_row(rng))


#: Query shapes covering every operator the benchmark workloads execute.
BENCHMARK_QUERIES = [
    "select * from employee",
    "select * from employee e",
    "select * from employee where salary > 60",
    "select name, salary * 2 from employee where dept_id = 1",
    "select * from employee e join department d on e.dept_id = d.dept_id",
    "select e.name, d.dept_name from employee e "
    "join department d on e.dept_id = d.dept_id",
    "select e.name, d.dept_name from employee e "
    "join department d on d.dept_id = e.dept_id where e.salary > 60",
    "select dept_id, count(*), sum(salary), avg(salary) from employee "
    "group by dept_id",
    "select count(*) from employee where salary >= 65",
    "select name, salary from employee order by salary desc limit 3",
    "select * from employee where dept_id in (1, 2)",
    "select upper(name) from employee where salary is not null",
]


class TestExecutorModeEquivalence:
    """Compiled and interpreted executors return identical rows in order."""

    @pytest.mark.parametrize("sql", BENCHMARK_QUERIES)
    def test_query_equivalence(self, simple_database, sql):
        plan = parse_sql(sql)
        interpreted = Executor(simple_database.tables, compiled=False)
        compiled = Executor(simple_database.tables, compiled=True)
        assert compiled.execute(plan) == interpreted.execute(plan)

    def test_join_of_filtered_scans(self, simple_database):
        plan = algebra.Join(
            algebra.Select(
                algebra.Scan("employee", "e"),
                BinaryOp(">", ColumnRef("salary", "e"), Literal(60)),
            ),
            algebra.Select(
                algebra.Scan("department", "d"),
                BinaryOp("=", ColumnRef("dept_name", "d"), Literal("eng")),
            ),
            BinaryOp("=", ColumnRef("dept_id", "e"), ColumnRef("dept_id", "d")),
        )
        interpreted = Executor(simple_database.tables, compiled=False)
        compiled = Executor(simple_database.tables, compiled=True)
        assert compiled.execute(plan) == interpreted.execute(plan)

    def test_reversed_equi_condition(self, simple_database):
        # Condition written right-side-first must join identically.
        plan = algebra.Join(
            algebra.Scan("employee", "e"),
            algebra.Scan("department", "d"),
            BinaryOp("=", ColumnRef("dept_id", "d"), ColumnRef("dept_id", "e")),
        )
        interpreted = Executor(simple_database.tables, compiled=False)
        compiled = Executor(simple_database.tables, compiled=True)
        assert compiled.execute(plan) == interpreted.execute(plan)

    def test_projected_join_pipelines_identically(self, simple_database):
        plan = algebra.Project(
            algebra.Join(
                algebra.Scan("employee", "e"),
                algebra.Scan("department", "d"),
                BinaryOp(
                    "=", ColumnRef("dept_id", "e"), ColumnRef("dept_id", "d")
                ),
            ),
            (
                algebra.OutputColumn(ColumnRef("name", "e"), "name"),
                algebra.OutputColumn(ColumnRef("dept_name", "d"), "dept"),
                algebra.OutputColumn(
                    BinaryOp("*", ColumnRef("salary", "e"), Literal(2)),
                    "double_salary",
                ),
            ),
        )
        interpreted = Executor(simple_database.tables, compiled=False)
        compiled = Executor(simple_database.tables, compiled=True)
        assert compiled.execute(plan) == interpreted.execute(plan)


class TestInListUnhashableRowValue:
    def test_unhashable_row_value_matches_interpreter(self):
        expr = InList(ColumnRef("x"), (1, 2, 3))
        row = {"x": [1]}
        assert expr.evaluate(row) is False
        assert expr.compile()(row) is False

    def test_unhashable_row_value_can_still_match(self):
        expr = InList(ColumnRef("x"), ([1], [2]))
        assert expr.evaluate({"x": [1]}) == expr.compile()({"x": [1]}) == True  # noqa: E712
        assert expr.evaluate({"x": [3]}) == expr.compile()({"x": [3]}) == False  # noqa: E712
