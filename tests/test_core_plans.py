"""Unit tests for plan costing/extraction policies and the reporting module."""

import pytest

from repro.core.cost_model import CostModel, CostParameters
from repro.core.dag import RegionDag
from repro.core.optimizer import CobraOptimizer
from repro.core.plans import (
    DagCostCalculator,
    HEURISTIC_RANK,
    INFINITE_COST,
    Plan,
    PlanExtractor,
    cost_based_chooser,
    heuristic_chooser,
)
from repro.core.region_analysis import analyze_program
from repro.experiments.harness import ResultTable
from repro.experiments.reporting import to_csv, to_markdown, to_series, write_report
from repro.net.network import FAST_LOCAL, SLOW_REMOTE
from repro.workloads import tpcds
from repro.workloads.programs import P0_SOURCE
from repro.workloads.wilos_programs import PATTERN_B_SOURCE


@pytest.fixture()
def expanded(orders_database, registry, slow_params):
    optimizer = CobraOptimizer(orders_database, slow_params, registry=registry)
    result = optimizer.optimize(P0_SOURCE)
    calculator = DagCostCalculator(
        result.dag, CostModel(orders_database, slow_params)
    )
    return result, calculator


class TestChoosers:
    def test_cost_based_chooser_picks_minimum(self, expanded):
        result, calculator = expanded
        chooser = cost_based_chooser(calculator)
        multi = [g for g in result.dag.iter_groups() if len(g.alternatives) > 1]
        assert multi
        for group in multi:
            chosen = chooser(group, list(group.alternatives))
            chosen_cost = calculator.node_cost(chosen)
            assert all(
                chosen_cost <= calculator.node_cost(n) + 1e-12
                for n in group.alternatives
            )

    def test_heuristic_chooser_follows_rank(self, expanded):
        result, _ = expanded
        chooser = heuristic_chooser()
        loop_group = next(
            g
            for g in result.dag.iter_groups()
            if {"sql-join", "prefetch"}
            <= {n.strategy for n in g.alternatives}
        )
        chosen = chooser(loop_group, list(loop_group.alternatives))
        assert chosen.strategy == "sql-join"

    def test_rank_table_is_consistent(self):
        assert HEURISTIC_RANK["sql-join"] < HEURISTIC_RANK["sql-aggregate"]
        assert HEURISTIC_RANK["sql-aggregate-extra"] < HEURISTIC_RANK["original"]
        assert HEURISTIC_RANK["original"] < HEURISTIC_RANK["prefetch"]


class TestSelfReferentialAlternatives:
    """Pattern B's 'extra aggregate query' embeds the original loop region."""

    @pytest.fixture()
    def pattern_b(self, wilos_database, fast_params):
        optimizer = CobraOptimizer(wilos_database, fast_params)
        result = optimizer.optimize(PATTERN_B_SOURCE, function_name="iteration_summary")
        calculator = DagCostCalculator(
            result.dag, CostModel(wilos_database, fast_params)
        )
        return result, calculator

    def test_costing_terminates_and_is_finite(self, pattern_b):
        result, calculator = pattern_b
        cost = calculator.group_cost(result.dag.root)
        assert cost < INFINITE_COST

    def test_heuristic_extraction_terminates(self, pattern_b):
        result, _ = pattern_b
        extractor = PlanExtractor(result.dag, heuristic_chooser())
        region = extractor.extract()
        source = region.to_source()
        # The heuristic keeps the loop *and* adds the extra aggregate query.
        assert "for it in" in source
        assert "count(is_finished)" in source or "sum(is_finished)" in source
        assert "sql-aggregate-extra" in set(extractor.strategies.values())

    def test_cobra_extraction_skips_the_extra_query(self, pattern_b):
        result, calculator = pattern_b
        extractor = PlanExtractor(result.dag, cost_based_chooser(calculator))
        source = extractor.extract().to_source()
        assert "sum(is_finished)" not in source


class TestPlanObject:
    def test_chosen_strategies_excludes_original(self):
        plan = Plan(
            region=None,
            cost=1.0,
            strategies={"a": "original", "b": "prefetch", "c": "sql-join"},
        )
        assert plan.chosen_strategies == {"prefetch", "sql-join"}


class TestReporting:
    @pytest.fixture()
    def table(self):
        table = ResultTable("Demo table", ["x", "time"])
        table.add_row(1, 0.5)
        table.add_row(10, 2.25)
        table.add_note("a note")
        return table

    def test_markdown(self, table):
        text = to_markdown(table)
        assert text.startswith("### Demo table")
        assert "| x | time |" in text
        assert "| 10 | 2.25 |" in text
        assert "*a note*" in text

    def test_csv(self, table):
        text = to_csv(table)
        lines = text.strip().splitlines()
        assert lines[0] == "x,time"
        assert lines[2] == "10,2.25"

    def test_series(self, table):
        series = to_series(table)
        assert series == {"x": [1, 10], "time": [0.5, 2.25]}

    def test_write_report_formats(self, table, tmp_path):
        for fmt in ("text", "markdown", "csv"):
            path = write_report([table, table], tmp_path / f"report.{fmt}", fmt=fmt)
            content = path.read_text()
            assert "Demo table" in content or "x,time" in content
        with pytest.raises(ValueError, match="unknown report format"):
            write_report([table], tmp_path / "bad.out", fmt="xml")
