"""Statement-cache and prepared-statement semantics.

Covers the engine-level LRU statement cache (hit/miss/eviction counters,
DDL invalidation), lazy estimate revalidation (``analyze()``, insert-driven
table-version bumps), the index-backed point-lookup fast path, and
compiled/interpreted equivalence through the prepared path.
"""

from __future__ import annotations

import pytest

from repro.db.database import Database, PreparedStatement
from repro.db.executor import Executor
from repro.db.schema import Column, ColumnType
from repro.db.sqlparser import SQLSyntaxError, bind_parameters, parse_sql


def make_database(*, compiled: bool = True, cache_size: int = 128) -> Database:
    database = Database(
        compiled_execution=compiled, statement_cache_size=cache_size
    )
    database.create_table(
        "items",
        [
            Column("item_id", ColumnType.INT),
            Column("label", ColumnType.STRING, width=12),
            Column("grp", ColumnType.INT),
        ],
        primary_key="item_id",
    )
    database.insert(
        "items",
        [
            {"item_id": i, "label": f"item{i}", "grp": i % 4}
            for i in range(40)
        ],
    )
    database.analyze()
    return database


class TestStatementCache:
    def test_prepare_returns_same_statement_for_same_text(self):
        database = make_database()
        first = database.prepare("select * from items where grp = ?")
        second = database.prepare("select * from items where grp = ?")
        assert first is second
        assert database.statement_cache.hits == 1
        assert database.statement_cache.misses == 1

    def test_distinct_text_is_a_miss(self):
        database = make_database()
        database.prepare("select * from items")
        database.prepare("select label from items")
        assert database.statement_cache.misses == 2
        assert database.statement_cache.hits == 0

    def test_lru_eviction_by_capacity(self):
        database = make_database(cache_size=2)
        database.prepare("select * from items where grp = 0")
        database.prepare("select * from items where grp = 1")
        database.prepare("select * from items where grp = 2")
        assert database.statement_cache.evictions == 1
        # The least recently used statement (grp = 0) was evicted.
        database.prepare("select * from items where grp = 0")
        assert database.statement_cache.misses == 4

    def test_lru_order_updated_on_hit(self):
        database = make_database(cache_size=2)
        database.prepare("select * from items where grp = 0")
        database.prepare("select * from items where grp = 1")
        database.prepare("select * from items where grp = 0")  # refresh
        database.prepare("select * from items where grp = 2")  # evicts grp=1
        database.prepare("select * from items where grp = 0")
        assert database.statement_cache.hits == 2

    def test_execute_sql_routes_through_cache(self):
        database = make_database()
        database.execute_sql("select * from items where grp = ?", (1,))
        database.execute_sql("select * from items where grp = ?", (2,))
        assert database.statement_cache.misses == 1
        assert database.statement_cache.hits == 1

    def test_estimate_sql_shares_the_prepared_plan(self):
        database = make_database()
        database.execute_sql("select * from items where grp = ?", (1,))
        database.estimate_sql("select * from items where grp = ?", (1,))
        assert database.statement_cache.misses == 1
        assert database.statement_cache.hits == 1

    def test_create_table_invalidates_cache(self):
        database = make_database()
        statement = database.prepare("select * from items")
        database.create_table("other", [Column("a", ColumnType.INT)])
        assert database.statement_cache.invalidations == 1
        fresh = database.prepare("select * from items")
        assert fresh is not statement
        assert database.statement_cache.misses == 2


class TestEstimateInvalidation:
    def test_estimate_computed_once_for_repeated_use(self):
        database = make_database()
        statement = database.prepare("select * from items where grp = ?")
        for _ in range(5):
            statement.estimate()
        assert statement.estimates_computed == 1

    def test_estimate_recomputed_after_analyze(self):
        database = make_database()
        statement = database.prepare("select * from items")
        assert statement.estimate().cardinality == 40
        database.insert(
            "items",
            [
                {"item_id": 100 + i, "label": "new", "grp": 0}
                for i in range(10)
            ],
        )
        database.analyze()
        assert statement.estimate().cardinality == 50
        assert statement.estimates_computed >= 2

    def test_estimate_recomputed_after_insert_version_bump(self):
        database = make_database()
        statement = database.prepare("select * from items")
        statement.estimate()
        database.insert("items", [{"item_id": 999, "label": "x", "grp": 0}])
        statement.estimate()
        assert statement.estimates_computed == 2

    def test_estimate_recomputed_after_set_table_statistics(self):
        from repro.db.statistics import TableStatistics

        database = make_database()
        statement = database.prepare("select * from items")
        statement.estimate()
        database.set_table_statistics(
            "items", TableStatistics(row_count=10_000, row_width=32)
        )
        assert statement.estimate().cardinality == 10_000
        assert statement.estimates_computed == 2

    def test_estimate_is_parameter_independent(self):
        database = make_database()
        statement = database.prepare("select * from items where grp = ?")
        assert statement.estimate((0,)) == statement.estimate((3,))
        assert statement.estimates_computed == 1


class TestPointLookupFastPath:
    def test_fast_path_detected_for_lookup_shape(self):
        database = make_database()
        statement = database.prepare("select * from items where item_id = ?")
        assert statement.point_lookup is not None

    def test_fast_path_not_used_for_range_predicates(self):
        database = make_database()
        statement = database.prepare("select * from items where grp > ?")
        assert statement.point_lookup is None

    def test_fast_path_matches_generic_executor(self):
        database = make_database()
        statement = database.prepare("select * from items where grp = ?")
        assert statement.point_lookup is not None
        plan = parse_sql("select * from items where grp = ?")
        reference = Executor(database.tables, compiled=False)
        for key in (0, 1, 2, 3, 99, None):
            expected = reference.execute(bind_parameters(plan, (key,)))
            assert statement.execute((key,)).rows == expected

    def test_fast_path_with_alias_and_literal(self):
        database = make_database()
        statement = database.prepare("select * from items i where i.item_id = 7")
        assert statement.point_lookup is not None
        rows = statement.execute().rows
        assert len(rows) == 1
        assert rows[0]["label"] == "item7"
        assert rows[0]["i.label"] == "item7"

    def test_fast_path_sees_new_rows_immediately(self):
        database = make_database()
        statement = database.prepare("select * from items where grp = ?")
        before = len(statement.execute((1,)).rows)
        database.insert("items", [{"item_id": 500, "label": "n", "grp": 1}])
        after = len(statement.execute((1,)).rows)
        assert after == before + 1

    def test_missing_parameter_raises(self):
        database = make_database()
        statement = database.prepare("select * from items where grp = ?")
        with pytest.raises(SQLSyntaxError, match="missing value"):
            statement.execute(())


class TestPreparedEquivalence:
    SQLS = [
        "select * from items where grp = ?",
        "select label from items where grp = ? order by label",
        "select grp, count(*) as n from items group by grp order by grp",
        "select * from items where item_id = ?",
    ]

    def test_compiled_false_equivalence_through_prepared_path(self):
        compiled = make_database(compiled=True)
        interpreted = make_database(compiled=False)
        # The interpreted engine never takes the index fast path.
        assert interpreted.compiled_execution is False
        for sql in self.SQLS:
            params = (2,) if "?" in sql else ()
            fast = compiled.execute_sql(sql, params)
            slow = interpreted.execute_sql(sql, params)
            assert fast.rows == slow.rows, sql

    def test_prepared_and_unprepared_results_identical(self):
        database = make_database()
        for sql in self.SQLS:
            params = (2,) if "?" in sql else ()
            statement = database.prepare(sql)
            plan = parse_sql(sql)
            if params:
                plan = bind_parameters(plan, params)
            expected = database.execute_plan(plan, sql=sql)
            assert statement.execute(params).rows == expected.rows, sql


class TestPreparedUpdates:
    def test_prepare_update_statement(self):
        database = make_database()
        statement = database.prepare(
            "update items set label = ? where item_id = ?"
        )
        assert not statement.is_query
        assert statement.execute_update(("renamed", 3)) == 1
        row = database.execute_sql(
            "select * from items where item_id = 3"
        ).rows[0]
        assert row["label"] == "renamed"

    def test_update_statement_cached(self):
        database = make_database()
        first = database.prepare("update items set grp = 0 where item_id = 1")
        second = database.prepare("update items set grp = 0 where item_id = 1")
        assert first is second

    def test_update_cannot_execute_as_query(self):
        database = make_database()
        statement = database.prepare("update items set grp = 0")
        with pytest.raises(SQLSyntaxError, match="cannot be executed"):
            statement.execute()

    def test_query_cannot_execute_as_update(self):
        database = make_database()
        statement = database.prepare("select * from items")
        with pytest.raises(SQLSyntaxError, match="cannot be executed"):
            statement.execute_update()

    def test_update_with_row_expression_and_compound_where(self):
        database = make_database()
        changed = database.execute_update_sql(
            "update items set grp = grp + 10 where grp = 1 and item_id < 20"
        )
        assert changed == 5
        rows = database.execute_sql("select * from items where grp = 11").rows
        assert len(rows) == 5


class TestPreparedStatementConstruction:
    def test_requires_exactly_one_of_plan_or_update(self):
        database = make_database()
        with pytest.raises(ValueError, match="exactly one"):
            PreparedStatement(database, "select 1")
