"""Unit and integration tests for the COBRA optimizer and plan extraction."""

import pytest

from repro.core.catalog import catalog_for_network
from repro.core.cost_model import CostModel, CostParameters
from repro.core.dag import RegionDag
from repro.core.heuristic import HeuristicOptimizer
from repro.core.optimizer import CobraOptimizer
from repro.core.plans import (
    DagCostCalculator,
    HEURISTIC_RANK,
    PlanExtractor,
    cost_based_chooser,
    heuristic_chooser,
)
from repro.core.region_analysis import analyze_program
from repro.net.network import FAST_LOCAL, SLOW_REMOTE
from repro.workloads import tpcds
from repro.workloads.programs import M0_SOURCE, P0_SOURCE
from repro.workloads.wilos_programs import build_patterns


def optimizer_for(database, network, registry=None, af=1.0):
    params = CostParameters.for_network(network).with_amortization(af)
    return CobraOptimizer(database, params, registry=registry)


class TestOptimizationResult:
    def test_p0_generates_join_and_prefetch_alternatives(
        self, orders_database, registry, slow_params
    ):
        optimizer = CobraOptimizer(orders_database, slow_params, registry=registry)
        result = optimizer.optimize(P0_SOURCE)
        assert result.alternatives_added >= 2
        strategies = {
            node.strategy for node in result.dag.iter_nodes()
        }
        assert {"sql-join", "prefetch"} <= strategies

    def test_best_cost_not_worse_than_original(
        self, orders_database, registry, slow_params
    ):
        optimizer = CobraOptimizer(orders_database, slow_params, registry=registry)
        result = optimizer.optimize(P0_SOURCE)
        assert result.best_cost <= result.original_cost
        assert result.estimated_speedup >= 1.0

    def test_rewritten_source_is_valid_python(
        self, orders_database, registry, slow_params
    ):
        optimizer = CobraOptimizer(orders_database, slow_params, registry=registry)
        result = optimizer.optimize(P0_SOURCE)
        compiled = compile(result.rewritten_source, "<rewritten>", "exec")
        assert compiled is not None
        assert "def process_orders(" in result.rewritten_source

    def test_choice_depends_on_cardinalities(
        self, orders_database, large_customer_database, registry, slow_params
    ):
        # Many orders per customer: prefetching the small customer table wins.
        many_orders = CobraOptimizer(
            orders_database, slow_params, registry=registry
        ).optimize(P0_SOURCE)
        assert many_orders.primary_choice() == "prefetch"
        # Few orders, many customers: the join query wins.
        few_orders = CobraOptimizer(
            large_customer_database, slow_params, registry=registry
        ).optimize(P0_SOURCE)
        assert few_orders.primary_choice() == "sql-join"

    def test_dependent_aggregation_keeps_original(self, orders_database, slow_params):
        # Figure 7/10: pushing only `sum` to SQL adds a query; COBRA must
        # reject it (Section V-B).
        optimizer = CobraOptimizer(orders_database, slow_params)
        # M0 queries a `sales` table that does not exist in this database, so
        # register statistics for it first.
        from repro.db.schema import Column, ColumnType
        from repro.db.statistics import TableStatistics

        database = tpcds.build_orders_database(10, 5)
        database.create_table(
            "sales",
            [
                Column("month", ColumnType.INT),
                Column("sale_amt", ColumnType.FLOAT),
            ],
        )
        database.insert(
            "sales", [{"month": m % 12, "sale_amt": float(m)} for m in range(100)]
        )
        database.analyze()
        optimizer = CobraOptimizer(database, slow_params)
        result = optimizer.optimize(M0_SOURCE)
        assert result.primary_choice() == "original"
        strategies = {node.strategy for node in result.dag.iter_nodes()}
        assert "sql-aggregate-extra" in strategies

    def test_optimization_is_fast(self, orders_database, registry, fast_params):
        optimizer = CobraOptimizer(orders_database, fast_params, registry=registry)
        result = optimizer.optimize(P0_SOURCE)
        assert result.optimization_seconds < 1.0

    def test_estimate_cost_matches_original_cost(
        self, orders_database, registry, slow_params
    ):
        optimizer = CobraOptimizer(orders_database, slow_params, registry=registry)
        result = optimizer.optimize(P0_SOURCE)
        standalone = optimizer.estimate_cost(P0_SOURCE)
        assert standalone == pytest.approx(result.original_cost, rel=1e-6)

    def test_no_rules_means_original_plan(self, orders_database, registry, slow_params):
        optimizer = CobraOptimizer(
            orders_database, slow_params, registry=registry, fir_rules=()
        )
        result = optimizer.optimize(P0_SOURCE)
        assert result.alternatives_added == 0
        assert result.primary_choice() == "original"
        assert result.best_cost == pytest.approx(result.original_cost)


class TestNetworkSensitivity:
    def test_cost_gap_larger_on_slow_network(self, orders_database, registry):
        slow = optimizer_for(orders_database, SLOW_REMOTE, registry).optimize(
            P0_SOURCE
        )
        fast = optimizer_for(orders_database, FAST_LOCAL, registry).optimize(
            P0_SOURCE
        )
        assert slow.original_cost > fast.original_cost
        assert slow.best_cost > fast.best_cost
        assert (slow.original_cost - slow.best_cost) > (
            fast.original_cost - fast.best_cost
        )


class TestHeuristicOptimizer:
    def test_heuristic_always_pushes_to_sql(self, orders_database, registry, slow_params):
        heuristic = HeuristicOptimizer(
            orders_database, slow_params, registry=registry
        )
        outcome = heuristic.rewrite(P0_SOURCE)
        assert outcome.chosen_strategies == {"sql-join"}
        assert "join customer" in outcome.rewritten_source

    def test_heuristic_never_prefetches(self, wilos_database, fast_params):
        pattern = build_patterns()["E"]
        heuristic = HeuristicOptimizer(wilos_database, fast_params)
        outcome = heuristic.rewrite(
            pattern.source, function_name=pattern.function_name
        )
        assert "prefetch" not in " ".join(outcome.chosen_strategies)

    def test_heuristic_rank_ordering(self):
        assert HEURISTIC_RANK["sql-join"] < HEURISTIC_RANK["original"]
        assert HEURISTIC_RANK["original"] < HEURISTIC_RANK["prefetch"]

    def test_cobra_not_worse_than_heuristic_in_estimated_cost(
        self, orders_database, registry, slow_params
    ):
        optimizer = CobraOptimizer(orders_database, slow_params, registry=registry)
        result = optimizer.optimize(P0_SOURCE)
        heuristic_plan = optimizer.extract_heuristic_plan(result)
        assert result.best_cost <= heuristic_plan.cost + 1e-9


class TestPlanExtraction:
    def test_original_chooser_reproduces_source_shape(self, registry, orders_database):
        info = analyze_program(P0_SOURCE, registry=registry)
        dag = RegionDag()
        dag.build(info.region)
        extractor = PlanExtractor(dag, lambda group, alts: alts[0])
        region = extractor.extract()
        source = region.to_source()
        assert "for o in rt.orm.load_all('Order')" in source
        assert "cust = o.customer" in source

    def test_cost_calculator_group_cost_is_min_of_alternatives(
        self, orders_database, registry, slow_params
    ):
        optimizer = CobraOptimizer(orders_database, slow_params, registry=registry)
        result = optimizer.optimize(P0_SOURCE)
        calculator = DagCostCalculator(
            result.dag, CostModel(orders_database, slow_params)
        )
        for group in result.dag.iter_groups():
            if len(group.alternatives) < 2:
                continue
            group_cost = calculator.group_cost(group)
            node_costs = [calculator.node_cost(n) for n in group.alternatives]
            assert group_cost == pytest.approx(min(node_costs))

    def test_strategies_recorded_per_group(self, orders_database, registry, slow_params):
        optimizer = CobraOptimizer(orders_database, slow_params, registry=registry)
        result = optimizer.optimize(P0_SOURCE)
        assert result.strategies
        assert any(s != "original" for s in result.strategies.values())
