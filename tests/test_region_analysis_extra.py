"""Additional region-analysis tests: data-access classification edge cases."""

import ast

import pytest

from repro.core.region_analysis import (
    AnalysisContext,
    analyze_program,
    classify_data_access,
)
from repro.core.regions import BasicBlockRegion, LoopRegion
from repro.workloads import tpcds


def classify(expression: str, registry=None) -> object:
    context = AnalysisContext(registry=registry, runtime_parameter="rt")
    node = ast.parse(expression, mode="eval").body
    return classify_data_access(node, context)


class TestClassification:
    def test_execute_query_literal(self):
        info = classify('rt.execute_query("select * from t")')
        assert info.kind == "sql" and info.sql == "select * from t"

    def test_execute_query_nonliteral_sql(self):
        info = classify("rt.execute_query(sql_variable)")
        assert info.kind == "sql" and info.sql is None

    def test_load_all_with_registry(self, registry):
        info = classify('rt.orm.load_all("Order")', registry)
        assert info.kind == "load_all"
        assert info.entity == "Order" and info.table == "orders"

    def test_load_all_unknown_entity(self, registry):
        info = classify('rt.orm.load_all("Ghost")', registry)
        assert info.kind == "load_all" and info.table is None

    def test_orm_get(self, registry):
        info = classify('rt.orm.get("Customer", 5)', registry)
        assert info.kind == "orm_get" and info.table == "customer"

    def test_execute_update(self):
        info = classify('rt.execute_update("update t set a = 1")')
        assert info.kind == "update"

    def test_prefetch_variants(self):
        assert classify('rt.prefetch("customer", "c_customer_sk")').table == "customer"
        grouped = classify('rt.prefetch_group("orders", "o_customer_sk")')
        assert grouped.kind == "prefetch" and grouped.table == "orders"
        query = classify('rt.prefetch_query("select * from t", "k")')
        assert query.kind == "prefetch" and query.sql == "select * from t"

    def test_cache_by_column(self):
        info = classify('rt.cache.cache_by_column(rows, "c_customer_sk")')
        assert info.kind == "prefetch" and info.key_column == "c_customer_sk"

    def test_lookup_variants(self):
        plain = classify('rt.lookup(key, "c_customer_sk")')
        assert plain.kind == "lookup" and plain.key_column == "c_customer_sk"
        qualified = classify('rt.lookup_group(key, "orders.o_customer_sk")')
        assert qualified.table == "orders"
        assert qualified.key_column == "o_customer_sk"

    def test_non_data_access_returns_none(self):
        assert classify("some_function(1, 2)") is None
        assert classify("rt.work(3)") is None
        assert classify("obj.method().chain()") is None


class TestLoopEntityTracking:
    def test_lazy_load_only_for_orm_loop_variables(self, registry):
        source = """
def f(rt):
    out = []
    for o in rt.orm.load_all("Order"):
        c = o.customer
        out.append(c.c_birth_year)
    for r in rt.execute_query("select * from orders"):
        x = r.customer
        out.append(x)
    return out
"""
        info = analyze_program(source, registry=registry)
        loops = [r for r in info.region.walk() if isinstance(r, LoopRegion)]
        first_kinds = [
            q.kind
            for block in loops[0].body.walk()
            if isinstance(block, BasicBlockRegion)
            for q in block.queries
        ]
        second_kinds = [
            q.kind
            for block in loops[1].body.walk()
            if isinstance(block, BasicBlockRegion)
            for q in block.queries
        ]
        assert "lazy_load" in first_kinds
        assert "lazy_load" not in second_kinds

    def test_only_mapped_relations_are_lazy_loads(self, registry):
        source = """
def f(rt):
    out = []
    for o in rt.orm.load_all("Order"):
        x = o.o_net_paid
        out.append(x)
    return out
"""
        info = analyze_program(source, registry=registry)
        loop = info.cursor_loops()[0]
        kinds = [
            q.kind
            for block in loop.body.walk()
            if isinstance(block, BasicBlockRegion)
            for q in block.queries
        ]
        assert "lazy_load" not in kinds

    def test_query_target_variable_recorded(self):
        source = """
def f(rt):
    rows = rt.execute_query("select * from t")
    return rows
"""
        info = analyze_program(source)
        block = next(
            r
            for r in info.region.walk()
            if isinstance(r, BasicBlockRegion) and r.queries
        )
        assert block.queries[0].target_variable == "rows"

    def test_runtime_parameter_defaults_to_first_argument(self):
        source = """
def f(ctx):
    return ctx.execute_query("select * from t")
"""
        info = analyze_program(source)
        assert info.context.runtime_parameter == "ctx"
        blocks = [
            r
            for r in info.region.walk()
            if isinstance(r, BasicBlockRegion) and r.queries
        ]
        assert blocks and blocks[0].queries[0].kind == "sql"
