"""Unit tests for row expressions."""

import pytest

from repro.db.expressions import (
    BinaryOp,
    BooleanOp,
    ColumnRef,
    ExpressionError,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    Not,
    conjunction,
    equals,
)

ROW = {"a": 3, "b": 10, "name": "Ann", "o.o_id": 7, "maybe": None}


class TestLiteralsAndColumns:
    def test_literal_evaluation(self):
        assert Literal(42).evaluate(ROW) == 42
        assert Literal("x").evaluate(ROW) == "x"

    def test_literal_sql_rendering(self):
        assert Literal(42).to_sql() == "42"
        assert Literal("it's").to_sql() == "'it''s'"
        assert Literal(None).to_sql() == "NULL"
        assert Literal(True).to_sql() == "TRUE"

    def test_column_ref_bare(self):
        assert ColumnRef("a").evaluate(ROW) == 3

    def test_column_ref_qualified(self):
        assert ColumnRef("o_id", "o").evaluate(ROW) == 7

    def test_column_ref_qualified_falls_back_to_bare(self):
        assert ColumnRef("a", "t").evaluate(ROW) == 3

    def test_column_ref_suffix_resolution(self):
        assert ColumnRef("o_id").evaluate(ROW) == 7

    def test_missing_column_raises(self):
        with pytest.raises(ExpressionError, match="not found"):
            ColumnRef("zzz").evaluate(ROW)

    def test_ambiguous_suffix_raises(self):
        row = {"x.a": 1, "y.a": 2}
        with pytest.raises(ExpressionError, match="ambiguous"):
            ColumnRef("a").evaluate(row)

    def test_referenced_columns(self):
        assert ColumnRef("o_id", "o").referenced_columns() == {"o.o_id"}


class TestOperators:
    @pytest.mark.parametrize(
        "op,expected",
        [("+", 13), ("-", -7), ("*", 30), ("/", 0.3), ("%", 3)],
    )
    def test_arithmetic(self, op, expected):
        result = BinaryOp(op, ColumnRef("a"), ColumnRef("b")).evaluate(ROW)
        assert result == pytest.approx(expected)

    @pytest.mark.parametrize(
        "op,expected",
        [("=", False), ("!=", True), ("<", True), (">=", False)],
    )
    def test_comparisons(self, op, expected):
        assert BinaryOp(op, ColumnRef("a"), ColumnRef("b")).evaluate(ROW) is expected

    def test_null_comparison_is_false(self):
        assert BinaryOp("=", ColumnRef("maybe"), Literal(1)).evaluate(ROW) is False

    def test_null_arithmetic_is_none(self):
        assert BinaryOp("+", ColumnRef("maybe"), Literal(1)).evaluate(ROW) is None

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            BinaryOp("**", Literal(1), Literal(2))

    def test_boolean_and_or(self):
        true_expr = BinaryOp("<", ColumnRef("a"), ColumnRef("b"))
        false_expr = BinaryOp(">", ColumnRef("a"), ColumnRef("b"))
        assert BooleanOp("and", (true_expr, false_expr)).evaluate(ROW) is False
        assert BooleanOp("or", (true_expr, false_expr)).evaluate(ROW) is True

    def test_boolean_requires_two_operands(self):
        with pytest.raises(ExpressionError):
            BooleanOp("and", (Literal(True),))

    def test_not(self):
        assert Not(Literal(False)).evaluate(ROW) is True

    def test_is_null(self):
        assert IsNull(ColumnRef("maybe")).evaluate(ROW) is True
        assert IsNull(ColumnRef("maybe"), negated=True).evaluate(ROW) is False

    def test_in_list(self):
        assert InList(ColumnRef("a"), (1, 3, 5)).evaluate(ROW) is True
        assert InList(ColumnRef("a"), (2, 4)).evaluate(ROW) is False

    def test_function_call(self):
        assert FunctionCall("upper", (ColumnRef("name"),)).evaluate(ROW) == "ANN"
        assert FunctionCall("length", (ColumnRef("name"),)).evaluate(ROW) == 3
        assert (
            FunctionCall("coalesce", (ColumnRef("maybe"), Literal(9))).evaluate(ROW)
            == 9
        )

    def test_unknown_function_raises(self):
        with pytest.raises(ExpressionError, match="unknown scalar function"):
            FunctionCall("median", (ColumnRef("a"),)).evaluate(ROW)


class TestHelpers:
    def test_conjunction_empty(self):
        assert conjunction([]) is None

    def test_conjunction_single(self):
        expr = equals("a", 3)
        assert conjunction([expr]) is expr

    def test_conjunction_many(self):
        combined = conjunction([equals("a", 3), equals("b", 10)])
        assert combined.evaluate(ROW) is True
        assert "AND" in combined.to_sql()

    def test_equals_builder(self):
        assert equals("a", 3).evaluate(ROW) is True
        assert equals("o_id", 7, qualifier="o").to_sql() == "o.o_id = 7"

    def test_sql_rendering_of_compound(self):
        expr = BooleanOp("or", (equals("a", 1), Not(equals("b", 2))))
        sql = expr.to_sql()
        assert "OR" in sql and "NOT" in sql
