"""The async session API: overlap accounting, async cursors, pipelines."""

from __future__ import annotations

import asyncio

import pytest

from repro.api import AsyncEngine, Engine, EngineClosedError, connect
from repro.db.database import Database
from repro.db.schema import Column, ColumnType
from repro.net.connection import ConnectionClosedError, CursorError
from repro.net.network import SLOW_REMOTE


def make_engine(network="slow-remote") -> Engine:
    database = Database()
    database.create_table(
        "items",
        [
            Column("item_id", ColumnType.INT),
            Column("label", ColumnType.STRING, width=12),
            Column("grp", ColumnType.INT),
        ],
        primary_key="item_id",
    )
    database.insert(
        "items",
        [
            {"item_id": i, "label": f"item{i}", "grp": i % 3}
            for i in range(30)
        ],
    )
    database.analyze()
    return connect(database=database, network=network)


def run(coro):
    return asyncio.run(coro)


class TestOverlapAccounting:
    def test_concurrent_clients_pay_max_latency(self):
        engine = make_engine()
        aengine = engine.aio()

        async def client(key):
            conn = aengine.connect()
            return await conn.execute(
                "select * from items where item_id = ?", (key,)
            )

        async def main():
            return await asyncio.gather(*[client(k) for k in range(8)])

        results = run(main())
        assert all(r.rows for r in results)
        # 8 in-flight requests overlap: elapsed ~= one request, not eight.
        assert aengine.elapsed < 2 * SLOW_REMOTE.round_trip_seconds
        # ...but every request still counts its own round trip.
        total = sum(c.stats.round_trips for c in aengine.connections)
        assert total == 8

    def test_sequential_awaits_remain_additive(self):
        engine = make_engine()
        aengine = engine.aio()

        async def main():
            conn = aengine.connect()
            for key in range(3):
                await conn.execute(
                    "select * from items where item_id = ?", (key,)
                )

        run(main())
        assert aengine.elapsed >= 3 * SLOW_REMOTE.round_trip_seconds

    def test_concurrent_faster_than_sequential(self):
        engine = make_engine()
        queries = [("select * from items where item_id = ?", (k,)) for k in range(6)]

        sync_conn = engine.connect()
        for sql, params in queries:
            sync_conn.execute_query(sql, params)

        aengine = engine.aio()

        async def main():
            conns = [aengine.connect() for _ in queries]
            await asyncio.gather(
                *[c.execute(sql, params) for c, (sql, params) in zip(conns, queries)]
            )

        run(main())
        assert aengine.elapsed < sync_conn.elapsed / 3

    def test_rows_identical_to_sync_path(self):
        engine = make_engine()
        sync_rows = engine.connect().execute_query(
            "select grp, count(*) from items group by grp"
        ).rows
        aengine = engine.aio()

        async def main():
            return await aengine.connect().execute(
                "select grp, count(*) from items group by grp"
            )

        assert run(main()).rows == sync_rows


class TestAsyncCursor:
    def test_execute_and_fetch(self):
        aengine = make_engine().aio()

        async def main():
            cur = aengine.cursor()
            await cur.execute("select * from items where grp = ?", (1,))
            first = await cur.fetchone()
            rest = await cur.fetchall()
            return cur.rowcount, first, rest

        rowcount, first, rest = run(main())
        assert rowcount == 10
        assert first["item_id"] == 1
        assert len(rest) == 9

    def test_fetchmany_and_iteration(self):
        aengine = make_engine().aio()

        async def main():
            cur = aengine.cursor()
            await cur.execute("select * from items where grp = 0")
            chunk = await cur.fetchmany(2)
            seen = [row["item_id"] async for row in cur]
            return chunk, seen

        chunk, seen = run(main())
        assert [r["item_id"] for r in chunk] == [0, 3]
        assert seen == [6, 9, 12, 15, 18, 21, 24, 27]

    def test_update_sets_rowcount(self):
        aengine = make_engine().aio()

        async def main():
            cur = aengine.cursor()
            await cur.execute("update items set label = 'x' where grp = 0")
            return cur.rowcount, cur.description

        rowcount, description = run(main())
        assert rowcount == 10
        assert description is None

    def test_executemany_is_one_round_trip(self):
        engine = make_engine()
        aengine = engine.aio()

        async def main():
            conn = aengine.connect()
            cur = conn.cursor()
            await cur.executemany(
                "select * from items where item_id = ?",
                [(k,) for k in range(12)],
            )
            return conn, cur

        conn, cur = run(main())
        assert conn.stats.round_trips == 1
        assert conn.stats.queries == 12
        assert cur.rowcount == 1  # last SELECT retained

    def test_description_matches_sync_cursor(self):
        engine = make_engine()
        sync_cursor = engine.connect().cursor()
        sync_cursor.execute("select label from items where item_id = 3")
        aengine = engine.aio()

        async def main():
            cur = aengine.cursor()
            await cur.execute("select label from items where item_id = 3")
            return cur.description

        assert run(main()) == sync_cursor.description

    def test_closed_cursor_raises(self):
        aengine = make_engine().aio()

        async def main():
            cur = aengine.cursor()
            cur.close()
            await cur.execute("select * from items")

        with pytest.raises(CursorError, match="closed"):
            run(main())


class TestAsyncPipeline:
    def test_async_pipeline_single_round_trip(self):
        engine = make_engine()
        aengine = engine.aio()

        async def main():
            conn = aengine.connect()
            async with conn.pipeline() as pipe:
                handles = [
                    pipe.execute(
                        "select * from items where item_id = ?", (k,)
                    )
                    for k in range(5)
                ]
            return conn, handles

        conn, handles = run(main())
        assert conn.stats.round_trips == 1
        assert [h.rows[0]["item_id"] for h in handles] == list(range(5))

    def test_two_pipelines_overlap(self):
        engine = make_engine()
        aengine = engine.aio()

        async def batch(conn):
            async with conn.pipeline() as pipe:
                for key in range(5):
                    pipe.execute(
                        "select * from items where item_id = ?", (key,)
                    )

        async def main():
            conns = [aengine.connect(), aengine.connect()]
            await asyncio.gather(*[batch(c) for c in conns])

        run(main())
        # Two concurrent one-round-trip batches cost ~one round trip.
        assert aengine.elapsed < 2 * SLOW_REMOTE.round_trip_seconds


class TestAsyncLifecycle:
    def test_connection_context_manager(self):
        aengine = make_engine().aio()

        async def main():
            async with aengine.connect() as conn:
                await conn.execute("select * from items where item_id = 1")
                return conn

        conn = run(main())
        assert conn.closed

    def test_engine_close_closes_connections(self):
        aengine = make_engine().aio()

        async def main():
            conn = aengine.connect()
            await conn.execute("select * from items where item_id = 1")
            return conn

        conn = run(main())
        aengine.close()
        assert conn.closed
        with pytest.raises(EngineClosedError):
            aengine.connect()

    def test_async_engine_context_manager(self):
        engine = make_engine()

        async def main():
            async with engine.aio() as aengine:
                conn = aengine.connect()
                await conn.execute("select * from items where item_id = 1")
                return aengine, conn

        aengine, conn = run(main())
        assert conn.closed

    def test_closed_connection_raises_on_execute(self):
        aengine = make_engine().aio()

        async def main():
            conn = aengine.connect()
            conn.close()
            await conn.execute("select * from items")

        with pytest.raises(ConnectionClosedError):
            run(main())

    def test_shared_clock_with_explicit_instance(self):
        from repro.net.clock import VirtualClock

        engine = make_engine()
        clock = VirtualClock()
        aengine = AsyncEngine(engine, clock=clock)

        async def main():
            await aengine.connect().execute(
                "select * from items where item_id = 1"
            )

        run(main())
        assert clock.now == aengine.elapsed > 0


class TestSharedServerState:
    def test_async_and_sync_share_statement_cache(self):
        engine = make_engine()
        engine.connect().execute_query(
            "select * from items where item_id = ?", (1,)
        )
        aengine = engine.aio()

        async def main():
            await aengine.connect().execute(
                "select * from items where item_id = ?", (2,)
            )

        run(main())
        cache = engine.database.statement_cache
        assert cache.misses == 1
        assert cache.hits >= 1

    def test_async_update_visible_to_sync(self):
        engine = make_engine()
        aengine = engine.aio()

        async def main():
            return await aengine.connect().execute_update(
                "update items set label = 'async' where item_id = ?", (5,)
            )

        assert run(main()) == 1
        row = engine.connect().execute_query(
            "select * from items where item_id = 5"
        ).rows[0]
        assert row["label"] == "async"
