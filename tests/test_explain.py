"""EXPLAIN / EXPLAIN ANALYZE tests.

``Database.explain`` renders the prepared plan with per-operator
cardinality estimates, the shard router's classification, and the
predicted execution tier — without executing anything.  ``explain_analyze``
executes the statement and annotates each operator with the row count it
actually produced and the modeled virtual time; the root's actual row
count must equal the executed result size *exactly*, and the run both
records an ``explain_analyze`` trace (when tracing is on) and feeds the
statistics catalog's drift counters.
"""

from __future__ import annotations

import pytest

from repro.api import Engine
from repro.obs import ExplainResult


def make_engine(shards: int = 0, tracing: bool = False) -> Engine:
    builder = (
        Engine.builder()
        .orders_workload(num_orders=120, num_customers=12)
        .network("fast-local")
    )
    if shards:
        builder.shards(shards)
    if tracing:
        builder.tracing()
    return builder.build()


JOIN_SQL = (
    "select o.o_id, c.c_first_name from orders o "
    "join customer c on o.o_customer_sk = c.c_customer_sk"
)


class TestExplain:
    def test_explain_renders_plan_without_executing(self):
        engine = make_engine()
        database = engine.database
        executed_before = database.queries_executed
        result = database.explain("select * from orders where o_id < 10")
        assert isinstance(result, ExplainResult)
        assert result.analyzed is False
        assert database.queries_executed == executed_before
        assert result.entries, "expected at least one operator line"
        assert result.root.depth == 0
        for entry in result.entries:
            assert entry.estimated_rows >= 0.0
            assert entry.estimated_time >= 0.0
            assert entry.actual_rows is None

    def test_explain_rejects_non_select(self):
        engine = make_engine()
        with pytest.raises(ValueError):
            engine.database.explain(
                "update orders set o_quantity = 1 where o_id = 3"
            )

    def test_unsharded_database_has_no_routing(self):
        engine = make_engine()
        result = engine.database.explain("select * from orders")
        assert result.routing is None
        assert "routing: none" in result.render()

    def test_sharded_point_query_routes_to_one_shard(self):
        engine = make_engine(shards=4)
        result = engine.database.explain(
            "select * from orders where o_id = 7"
        )
        assert result.routing["kind"] == "routed"
        shards = result.routing["shards"]
        assert shards is not None and len(shards) == 1
        assert f"over shard(s) {list(shards)}" in result.render()

    def test_predicted_tier_for_a_vectorizable_scan(self):
        engine = make_engine()
        result = engine.database.explain(
            "select * from orders where o_quantity > 2"
        )
        assert result.tier == "vectorized"
        assert "tier: vectorized" in result.render()

    def test_parameterized_statement_explains_with_bound_values(self):
        engine = make_engine()
        result = engine.database.explain(
            "select * from orders where o_id = ?", (5,)
        )
        assert result.root.operator in ("Select", "Project", "Scan")
        assert result.root.estimated_rows >= 0.0

    def test_as_dict_round_trip(self):
        engine = make_engine(shards=2)
        result = engine.database.explain("select * from orders")
        exported = result.as_dict()
        assert exported["analyzed"] is False
        assert exported["tier"] == result.tier
        assert len(exported["plan"]) == len(result.entries)


class TestExplainAnalyze:
    def test_root_actual_rows_equal_executed_result_size(self):
        engine = make_engine()
        database = engine.database
        sql = "select * from orders where o_quantity > 2"
        expected = len(database.execute_sql(sql).rows)
        result = database.explain_analyze(sql)
        assert result.analyzed is True
        assert result.root.actual_rows == expected

    def test_sharded_join_actuals_are_exact(self):
        engine = make_engine(shards=4)
        database = engine.database
        expected = len(database.execute_sql(JOIN_SQL).rows)
        result = database.explain_analyze(JOIN_SQL)
        assert result.routing is not None
        assert result.root.actual_rows == expected
        for entry in result.entries:
            assert entry.actual_rows is not None
            assert entry.actual_time is not None and entry.actual_time >= 0.0
        rendered = result.render()
        assert "EXPLAIN ANALYZE" in rendered
        assert f"act_rows={expected}" in rendered

    def test_estimates_sit_next_to_actuals(self):
        engine = make_engine()
        result = engine.database.explain_analyze(
            "select * from orders where o_id < 10"
        )
        for entry in result.entries:
            exported = entry.as_dict()
            assert "estimated_rows" in exported
            assert "actual_rows" in exported

    def test_analyze_records_a_trace_with_operator_spans(self):
        engine = make_engine(shards=4, tracing=True)
        database = engine.database
        result = database.explain_analyze(JOIN_SQL)
        trace = engine.tracer.traces[-1]
        assert trace.kind == "explain_analyze"
        assert trace.sql == JOIN_SQL
        trace.check_accounting()
        operator_spans = [
            span
            for span in trace.spans
            if span.name.startswith("operator:")
        ]
        assert len(operator_spans) == len(result.entries)
        for span, entry in zip(operator_spans, result.entries):
            assert span.name == f"operator:{entry.operator}"
            assert span.attributes["rows"] == entry.actual_rows
            assert span.duration == entry.actual_time

    def test_analyze_feeds_the_statistics_catalog(self):
        engine = make_engine()
        database = engine.database
        before = database.statistics.feedback_stats()["observations"]
        database.explain_analyze("select * from orders where o_id < 10")
        after = database.statistics.feedback_stats()["observations"]
        assert after == before + 1

    def test_analyze_without_tracer_still_produces_actuals(self):
        engine = make_engine(shards=2, tracing=False)
        result = engine.database.explain_analyze(JOIN_SQL)
        assert result.root.actual_rows is not None
