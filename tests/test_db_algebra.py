"""Unit tests for relational algebra plan nodes."""

import pytest

from repro.db import algebra
from repro.db.expressions import ColumnRef, Literal, BinaryOp, equals


def join_plan() -> algebra.PlanNode:
    return algebra.Join(
        algebra.Select(algebra.Scan("orders", "o"), equals("o_status", "OPEN")),
        algebra.Scan("customer", "c"),
        BinaryOp("=", ColumnRef("o_customer_sk", "o"), ColumnRef("c_customer_sk", "c")),
    )


class TestNodeConstruction:
    def test_scan_alias_defaults_to_table(self):
        assert algebra.Scan("orders").effective_alias == "orders"
        assert algebra.Scan("orders", "o").effective_alias == "o"

    def test_project_requires_outputs(self):
        with pytest.raises(algebra.AlgebraError):
            algebra.Project(algebra.Scan("t"), ())

    def test_project_output_names(self):
        plan = algebra.Project(
            algebra.Scan("t"),
            (
                algebra.OutputColumn(ColumnRef("a"), "a"),
                algebra.OutputColumn(ColumnRef("b"), "total"),
            ),
        )
        assert plan.output_names == ["a", "total"]

    def test_aggregate_spec_validation(self):
        with pytest.raises(algebra.AlgebraError):
            algebra.AggregateSpec("median", ColumnRef("x"), "m")
        with pytest.raises(algebra.AlgebraError):
            algebra.AggregateSpec("sum", None, "s")
        spec = algebra.AggregateSpec("count", None, "n")
        assert spec.function == "count"

    def test_aggregate_requires_keys_or_aggregates(self):
        with pytest.raises(algebra.AlgebraError):
            algebra.Aggregate(algebra.Scan("t"), (), ())

    def test_sort_requires_keys(self):
        with pytest.raises(algebra.AlgebraError):
            algebra.Sort(algebra.Scan("t"), ())

    def test_limit_rejects_negative(self):
        with pytest.raises(algebra.AlgebraError):
            algebra.Limit(algebra.Scan("t"), -1)


class TestTreeQueries:
    def test_base_tables(self):
        assert join_plan().base_tables() == {"orders", "customer"}

    def test_height(self):
        assert algebra.Scan("t").height() == 1
        assert join_plan().height() == 3

    def test_walk_visits_every_node(self):
        kinds = [type(node).__name__ for node in algebra.walk(join_plan())]
        assert kinds[0] == "Join"
        assert "Scan" in kinds and "Select" in kinds
        assert len(kinds) == 4

    def test_find_scans_left_to_right(self):
        scans = algebra.find_scans(join_plan())
        assert [s.table for s in scans] == ["orders", "customer"]

    def test_has_operator(self):
        assert algebra.has_operator(join_plan(), algebra.Select)
        assert not algebra.has_operator(join_plan(), algebra.Aggregate)

    def test_children_of_leaf_is_empty(self):
        assert algebra.Scan("t").children() == ()

    def test_repr_is_readable(self):
        text = repr(join_plan())
        assert "Join" in text and "orders" in text
