"""Additional F-IR expression tests: node behaviour, describe forms, traversal."""

import pytest

from repro.fir import expressions as fir


class TestDescribeForms:
    def test_const_and_var(self):
        assert fir.Const(3).describe() == "3"
        assert fir.Var("x").describe() == "x"
        assert fir.ParamVar("sum").describe() == "<sum>"

    def test_column_and_attr(self):
        assert fir.ColumnOf("Q", "sale_amt").describe() == "Q.sale_amt"
        attr = fir.Attr(fir.Var("cust"), "c_birth_year")
        assert attr.describe() == "cust.c_birth_year"

    def test_binop_and_call(self):
        expr = fir.BinOp("+", fir.ParamVar("sum"), fir.ColumnOf("Q", "x"))
        assert expr.describe() == "(<sum> + Q.x)"
        call = fir.Call("my_func", (fir.ColumnOf("Q", "o_id"), fir.Const(1)))
        assert call.describe() == "my_func(Q.o_id, 1)"

    def test_insert_and_mapput(self):
        insert = fir.Insert(fir.ParamVar("result"), fir.Var("val"))
        assert insert.describe() == "insert(<result>, val)"
        put = fir.MapPut(fir.ParamVar("m"), fir.ColumnOf("Q", "k"), fir.Var("v"))
        assert put.describe() == "put(<m>, Q.k, v)"

    def test_cond_exec(self):
        node = fir.CondExec(
            fir.BinOp(">", fir.ColumnOf("Q", "x"), fir.Const(1)),
            fir.Insert(fir.ParamVar("r"), fir.Var("t")),
        )
        assert node.describe().startswith("?(")

    def test_query_prefetch_lookup_seq(self):
        assert "select" in fir.QueryExpr("select * from t").describe()
        assert fir.Prefetch("customer", "c_customer_sk").describe() == (
            "prefetch(customer, c_customer_sk)"
        )
        lookup = fir.CacheLookup("customer.c_customer_sk", fir.ColumnOf("Q", "k"))
        assert "lookup(" in lookup.describe()
        seq = fir.SeqExpr((fir.Const(1), fir.Const(2)))
        assert seq.describe() == "seq(1, 2)"

    def test_fold_project_nesting(self):
        fold = fir.Fold(
            function=fir.BinOp("+", fir.ParamVar("s"), fir.ColumnOf("Q", "x")),
            initial=fir.Const(0),
            query=fir.QueryExpr("select x from t"),
        )
        projected = fir.ProjectExpr(fold, 0)
        assert projected.describe().startswith("project0(fold(")


class TestTraversal:
    def test_walk_visits_children_in_preorder(self):
        expr = fir.BinOp(
            "+",
            fir.ParamVar("s"),
            fir.Call("f", (fir.ColumnOf("Q", "a"), fir.Const(2))),
        )
        kinds = [type(node).__name__ for node in expr.walk()]
        assert kinds[0] == "BinOp"
        assert kinds.count("Const") == 1 and kinds.count("ColumnOf") == 1

    def test_contains_and_find(self):
        fold = fir.Fold(
            function=fir.TupleExpr(
                (
                    fir.BinOp("+", fir.ParamVar("s"), fir.ColumnOf("Q", "x")),
                    fir.MapPut(fir.ParamVar("m"), fir.ColumnOf("Q", "k"), fir.ParamVar("s")),
                )
            ),
            initial=fir.TupleExpr((fir.Const(0), fir.Const({}))),
            query=fir.QueryExpr("select * from t"),
        )
        assert fir.contains_node(fold, fir.MapPut)
        assert not fir.contains_node(fold, fir.InnerLookupQuery)
        assert len(fir.find_nodes(fold, fir.ParamVar)) == 3
        assert len(fir.find_nodes(fold, fir.QueryExpr)) == 1

    def test_children_of_leaves_are_empty(self):
        for leaf in (fir.Const(1), fir.Var("x"), fir.ColumnOf("Q", "a"),
                     fir.QueryExpr("select 1 from t"), fir.Prefetch("t", "k")):
            assert leaf.children() == ()
