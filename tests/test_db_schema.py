"""Unit tests for the schema/catalog layer."""

import pytest

from repro.db.schema import (
    Column,
    ColumnType,
    ForeignKey,
    Schema,
    SchemaError,
    TableSchema,
)


def make_table() -> TableSchema:
    return TableSchema(
        "orders",
        [
            Column("o_id", ColumnType.INT),
            Column("o_customer_sk", ColumnType.INT),
            Column("o_comment", ColumnType.STRING, width=100),
        ],
        primary_key="o_id",
        foreign_keys=[ForeignKey("o_customer_sk", "customer", "c_customer_sk")],
    )


class TestColumn:
    def test_default_width_comes_from_type(self):
        assert Column("x", ColumnType.INT).byte_width == 8
        assert Column("s", ColumnType.STRING).byte_width == 32
        assert Column("b", ColumnType.BOOL).byte_width == 1

    def test_explicit_width_overrides_type_default(self):
        assert Column("s", ColumnType.STRING, width=100).byte_width == 100

    def test_every_type_has_a_width(self):
        for ctype in ColumnType:
            assert ctype.default_width > 0


class TestTableSchema:
    def test_row_width_is_sum_of_column_widths(self):
        table = make_table()
        assert table.row_width == 8 + 8 + 100

    def test_width_of_projection(self):
        table = make_table()
        assert table.width_of(["o_id", "o_comment"]) == 108

    def test_column_lookup(self):
        table = make_table()
        assert table.column("o_id").name == "o_id"
        assert table.has_column("o_comment")
        assert not table.has_column("missing")

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError, match="no column"):
            make_table().column("missing")

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            TableSchema("t", [Column("a"), Column("a")])

    def test_empty_table_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_primary_key_must_be_a_column(self):
        with pytest.raises(SchemaError, match="primary key"):
            TableSchema("t", [Column("a")], primary_key="b")

    def test_foreign_key_column_must_exist(self):
        with pytest.raises(SchemaError, match="foreign key"):
            TableSchema(
                "t",
                [Column("a")],
                foreign_keys=[ForeignKey("b", "other", "x")],
            )

    def test_foreign_key_to(self):
        table = make_table()
        fk = table.foreign_key_to("customer")
        assert fk is not None and fk.column == "o_customer_sk"
        assert table.foreign_key_to("unknown") is None

    def test_column_names_in_declaration_order(self):
        assert make_table().column_names == ["o_id", "o_customer_sk", "o_comment"]


class TestSchema:
    def test_add_and_lookup(self):
        schema = Schema()
        table = schema.add(make_table())
        assert schema.table("orders") is table
        assert schema.has_table("orders")
        assert schema.table_names() == ["orders"]

    def test_duplicate_table_rejected(self):
        schema = Schema()
        schema.add(make_table())
        with pytest.raises(SchemaError, match="already exists"):
            schema.add(make_table())

    def test_unknown_table_raises(self):
        with pytest.raises(SchemaError, match="no table"):
            Schema().table("nope")
