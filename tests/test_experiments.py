"""Tests for the experiment harness and the figure reproductions (small scale)."""

import pytest

from repro.experiments.ablations import (
    run_af_sweep,
    run_dedup_ablation,
    run_network_sensitivity,
    run_rule_ablation,
)
from repro.experiments.figure13 import (
    build_stats_only_database,
    estimate_point,
    measure_point,
    run_figure13a,
)
from repro.experiments.figure15 import run_figure14, run_figure15, run_figure16
from repro.experiments.harness import ResultTable, compile_program
from repro.experiments.opt_time import run_optimization_time
from repro.net.network import FAST_LOCAL, SLOW_REMOTE


class TestResultTable:
    def test_add_row_and_render(self):
        table = ResultTable("demo", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_note("a note")
        text = table.render()
        assert "demo" in text and "2.50" in text and "a note" in text
        assert table.as_dicts() == [{"a": 1, "b": 2.5}]
        assert table.column("a") == [1]

    def test_row_length_validated(self):
        table = ResultTable("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_compile_program_missing_function(self):
        with pytest.raises(ValueError, match="does not define"):
            compile_program("x = 1", "f")


class TestFigure13:
    def test_measured_point_reports_all_variants(self):
        point = measure_point(100, 50, FAST_LOCAL)
        assert point.p0_seconds > 0
        assert point.p1_seconds > 0
        assert point.p2_seconds > 0
        assert point.cobra_choice in {
            "Hibernate(P0)",
            "SQL Query(P1)",
            "Prefetching(P2)",
        }
        assert point.cobra_seconds in {
            point.p0_seconds,
            point.p1_seconds,
            point.p2_seconds,
        }

    def test_analytical_point_at_paper_scale(self):
        point = estimate_point(1_000_000, 73_000, SLOW_REMOTE)
        # Paper (Figure 13a, 1M orders): P2 (3467s) beats P1 (6047s).
        assert point.p2_seconds < point.p1_seconds
        assert point.cobra_choice == "Prefetching(P2)"
        # The shape: both in the thousands of seconds on the slow network.
        assert 1_000 < point.p2_seconds < 20_000
        assert 1_000 < point.p1_seconds < 20_000

    def test_analytical_crossover_with_orders(self):
        low = estimate_point(1_000, 73_000, SLOW_REMOTE)
        high = estimate_point(1_000_000, 73_000, SLOW_REMOTE)
        assert low.cobra_choice == "SQL Query(P1)"
        assert high.cobra_choice == "Prefetching(P2)"

    def test_figure13c_p1_constant_p2_grows(self):
        small = estimate_point(10_000, 100, SLOW_REMOTE)
        large = estimate_point(10_000, 100_000, SLOW_REMOTE)
        assert small.p1_seconds == pytest.approx(large.p1_seconds, rel=0.05)
        assert large.p2_seconds > small.p2_seconds * 2

    def test_run_figure13a_small(self):
        table = run_figure13a(
            scale_divisor=1,
            include_analytical=False,
            order_counts=(100, 800),
            num_customers=200,
        )
        assert len(table.rows) == 2
        assert "COBRA" in table.columns

    def test_stats_only_database_has_no_rows_but_estimates(self):
        database = build_stats_only_database(5_000, 500)
        assert database.row_count("orders") == 0
        assert database.estimate_sql("select * from orders").cardinality == 5_000


class TestFigure14And16:
    def test_figure14_has_six_rows_totalling_32(self):
        table = run_figure14()
        assert len(table.rows) == 6
        assert sum(table.column("#")) == 32

    def test_figure16_lists_32_fragments(self):
        table = run_figure16()
        assert len(table.rows) == 32


class TestFigure15:
    @pytest.fixture(scope="class")
    def table(self):
        return run_figure15(scale=800)

    def test_all_six_patterns_present(self, table):
        assert [row[0] for row in table.rows] == [f"P {p}" for p in "ABCDEF"]

    def test_all_variants_equivalent(self, table):
        assert all(table.column("results_equal"))

    def test_cobra_never_much_worse_than_original(self, table):
        for fraction in table.column("cobra_af50_fraction"):
            assert fraction <= 1.1
        for fraction in table.column("cobra_af1_fraction"):
            assert fraction <= 1.1

    def test_cobra_beats_heuristic_somewhere(self, table):
        rows = table.as_dicts()
        improvements = [
            row["heuristic_fraction"] - row["cobra_af50_fraction"] for row in rows
        ]
        assert max(improvements) > 0.5

    def test_pattern_b_heuristic_is_worse_than_original(self, table):
        row = next(r for r in table.as_dicts() if r["program"] == "P B")
        assert row["heuristic_fraction"] > 1.0
        assert row["cobra_af50_choice"] == "original"


class TestOptimizationTimeAndAblations:
    def test_optimization_time_below_a_second(self):
        table = run_optimization_time(scale=500)
        assert len(table.rows) == 7
        assert all(t < 1.0 for t in table.column("optimization_seconds"))

    def test_af_sweep_moves_towards_prefetch(self):
        table = run_af_sweep(factors=(1, 50), scale=800)
        choices = table.column("chosen_strategy")
        assert choices[-1] == "prefetch"

    def test_rule_ablation_no_rules_keeps_original(self):
        table = run_rule_ablation(scale=500)
        rows = {row[0]: row for row in table.rows}
        assert rows["no rules (original only)"][1] == "original"
        all_cost = rows["all rules"][2]
        assert all(all_cost <= row[2] + 1e-9 for row in table.rows)

    def test_network_sensitivity_shows_a_choice_at_every_point(self):
        table = run_network_sensitivity(bandwidth_factors=(1, 64, 4096))
        assert len(table.rows) == 3
        assert all(
            choice in {"sql-join", "prefetch", "original"}
            for choice in table.column("chosen")
        )

    def test_dedup_ablation_nodes_not_more_than_insertions(self):
        table = run_dedup_ablation(scale=500)
        for row in table.as_dicts():
            assert row["nodes (with dedup)"] <= row["insertions (without dedup)"]


class TestDynamicPrefetchAblation:
    def test_dynamic_tracks_the_better_static_policy(self):
        from repro.experiments.ablations import run_dynamic_prefetch_ablation

        table = run_dynamic_prefetch_ablation(
            access_counts=(1, 100), num_customers=200
        )
        first, last = table.as_dicts()
        assert not first["dynamic_prefetched"]
        assert last["dynamic_prefetched"]
        assert last["dynamic_s"] < last["never_prefetch_s"]
