"""Unit tests for row storage."""

import pytest

from repro.db.schema import Column, ColumnType, SchemaError, TableSchema
from repro.db.table import Table


@pytest.fixture()
def people() -> Table:
    schema = TableSchema(
        "people",
        [
            Column("person_id", ColumnType.INT),
            Column("name", ColumnType.STRING, width=16),
            Column("city", ColumnType.STRING, width=16),
        ],
        primary_key="person_id",
    )
    table = Table(schema)
    table.insert_many(
        [
            {"person_id": 1, "name": "ann", "city": "pune"},
            {"person_id": 2, "name": "bob", "city": "mumbai"},
            {"person_id": 3, "name": "carol", "city": "pune"},
        ]
    )
    return table


class TestInsert:
    def test_insert_fills_missing_columns_with_none(self, people):
        stored = people.insert({"person_id": 4})
        assert stored["name"] is None and stored["city"] is None

    def test_insert_rejects_unknown_columns(self, people):
        with pytest.raises(SchemaError, match="unknown columns"):
            people.insert({"person_id": 5, "height": 180})

    def test_insert_many_returns_count(self, people):
        added = people.insert_many(
            [{"person_id": 10 + i, "name": f"p{i}"} for i in range(4)]
        )
        assert added == 4
        assert len(people) == 7

    def test_len_and_iter(self, people):
        assert len(people) == 3
        assert sum(1 for _ in people) == 3


class TestLookup:
    def test_primary_key_lookup_returns_copy(self, people):
        row = people.lookup_pk(2)
        assert row["name"] == "bob"
        row["name"] = "mutated"
        assert people.lookup_pk(2)["name"] == "bob"

    def test_primary_key_miss_returns_none(self, people):
        assert people.lookup_pk(99) is None

    def test_lookup_without_pk_index_raises(self):
        schema = TableSchema("t", [Column("a")])
        with pytest.raises(SchemaError, match="no primary key"):
            Table(schema).lookup_pk(1)

    def test_scan_yields_copies(self, people):
        for row in people.scan():
            row["name"] = "x"
        assert people.lookup_pk(1)["name"] == "ann"


class TestMaintenance:
    def test_distinct_count(self, people):
        assert people.distinct_count("city") == 2
        assert people.distinct_count("person_id") == 3

    def test_distinct_count_unknown_column(self, people):
        with pytest.raises(SchemaError):
            people.distinct_count("unknown")

    def test_clear(self, people):
        people.clear()
        assert len(people) == 0
        assert people.lookup_pk(1) is None

    def test_row_width_follows_schema(self, people):
        assert people.row_width == 8 + 16 + 16

    def test_update_rows(self, people):
        changed = people.update_rows(
            lambda row: row["city"] == "pune", {"city": "pnq"}
        )
        assert changed == 2
        assert people.lookup_pk(1)["city"] == "pnq"
        assert people.lookup_pk(2)["city"] == "mumbai"

    def test_update_rows_with_callable_value(self, people):
        people.update_rows(
            lambda row: True, {"name": lambda row: row["name"].upper()}
        )
        assert people.lookup_pk(3)["name"] == "CAROL"

    def test_update_rows_unknown_column(self, people):
        with pytest.raises(SchemaError):
            people.update_rows(lambda row: True, {"missing": 1})


class TestPrimaryKeyReindexOnUpdate:
    def test_update_changing_pk_moves_index_entry(self, people):
        people.update_rows(
            lambda row: row["person_id"] == 2, {"person_id": 20}
        )
        assert people.lookup_pk(2) is None
        moved = people.lookup_pk(20)
        assert moved is not None and moved["name"] == "bob"

    def test_update_keeping_pk_leaves_index_intact(self, people):
        people.update_rows(
            lambda row: row["person_id"] == 2, {"city": "delhi"}
        )
        assert people.lookup_pk(2)["city"] == "delhi"

    def test_pk_update_does_not_drop_reclaimed_key(self, people):
        # 2 -> 20, then 3 -> 2: the key 2 now belongs to carol's row and a
        # later unrelated update must not evict it.
        people.update_rows(lambda row: row["person_id"] == 2, {"person_id": 20})
        people.update_rows(lambda row: row["person_id"] == 3, {"person_id": 2})
        assert people.lookup_pk(2)["name"] == "carol"
        assert people.lookup_pk(20)["name"] == "bob"
        assert people.lookup_pk(3) is None


class TestSecondaryIndexesAndCachedStats:
    def test_index_for_groups_rows_and_skips_nulls(self, people):
        people.insert({"person_id": 4, "name": "dave", "city": None})
        index = people.index_for("city")
        assert sorted(r["name"] for r in index["pune"]) == ["ann", "carol"]
        assert None not in index

    def test_index_for_unknown_column_raises(self, people):
        with pytest.raises(SchemaError):
            people.index_for("height")

    def test_index_invalidated_on_insert(self, people):
        first = people.index_for("city")
        assert len(first["pune"]) == 2
        people.insert({"person_id": 4, "name": "dave", "city": "pune"})
        assert len(people.index_for("city")["pune"]) == 3

    def test_index_invalidated_on_update(self, people):
        assert len(people.index_for("city")["pune"]) == 2
        people.update_rows(lambda row: row["name"] == "bob", {"city": "pune"})
        assert len(people.index_for("city")["pune"]) == 3

    def test_index_invalidated_on_clear(self, people):
        people.index_for("city")
        people.clear()
        assert people.index_for("city") == {}

    def test_distinct_count_cached_and_invalidated(self, people):
        assert people.distinct_count("city") == 2
        people.insert({"person_id": 4, "name": "dave", "city": "delhi"})
        assert people.distinct_count("city") == 3

    def test_version_bumps_on_every_mutation(self, people):
        version = people.version
        people.insert({"person_id": 4, "name": "dave", "city": "pune"})
        assert people.version > version
        version = people.version
        people.update_rows(lambda row: True, {"city": "x"})
        assert people.version > version
        version = people.version
        people.clear()
        assert people.version > version


class TestUpdateStatementAtomicity:
    def test_failed_update_leaves_table_unchanged(self, people):
        index_before = people.index_for("city")
        assert len(index_before["pune"]) == 2
        version_before = people.version

        calls = []

        def flaky(row):
            calls.append(row["person_id"])
            if len(calls) > 1:
                raise RuntimeError("boom")
            return "delhi"

        with pytest.raises(RuntimeError):
            people.update_rows(lambda row: True, {"city": flaky})
        # The update is statement-atomic: the failure on the second row
        # means *no* row was rewritten, not even the first.
        assert people.version == version_before
        assert "delhi" not in people.index_for("city")
        assert len(people.index_for("city")["pune"]) == 2
        assert people.distinct_count("city") == 2

    def test_failed_predicate_leaves_table_unchanged(self, people):
        def flaky_predicate(row):
            if row["person_id"] == 3:
                raise TypeError("bad comparison")
            return True

        with pytest.raises(TypeError):
            people.update_rows(flaky_predicate, {"city": "delhi"})
        assert [row["city"] for row in people.rows] == [
            "pune",
            "mumbai",
            "pune",
        ]

    def test_truncate_to_removes_tail_and_pk_entries(self, people):
        people.insert({"person_id": 4, "name": "dave", "city": "goa"})
        people.insert({"person_id": 5, "name": "erin", "city": "goa"})
        removed = people.truncate_to(3)
        assert removed == 2
        assert len(people) == 3
        assert people.lookup_pk(4) is None
        assert people.lookup_pk(5) is None
        assert people.truncate_to(3) == 0
        assert people.lookup_pk(1)["name"] == "ann"


class TestColumnarView:
    def test_columns_are_aligned_value_arrays(self, people):
        store = people.columns()
        assert list(store) == ["person_id", "name", "city"]
        assert store["person_id"] == [1, 2, 3]
        assert store["name"] == ["ann", "bob", "carol"]
        assert store["city"] == ["pune", "mumbai", "pune"]

    def test_columns_cached_until_mutation(self, people):
        first = people.columns()
        assert people.columns() is first  # same object while unchanged

    def test_insert_invalidates_columnar_view(self, people):
        before = people.columns()
        people.insert({"person_id": 4, "name": "dave", "city": "delhi"})
        after = people.columns()
        assert after is not before
        assert after["city"] == ["pune", "mumbai", "pune", "delhi"]
        # The stale view was not mutated in place.
        assert before["city"] == ["pune", "mumbai", "pune"]

    def test_update_invalidates_columnar_view(self, people):
        before = people.columns()
        people.update_rows(lambda row: row["city"] == "pune", {"city": "goa"})
        after = people.columns()
        assert after is not before
        assert after["city"] == ["goa", "mumbai", "goa"]

    def test_clear_invalidates_columnar_view(self, people):
        people.columns()
        people.clear()
        assert people.columns() == {"person_id": [], "name": [], "city": []}
