"""Unit tests for row storage."""

import pytest

from repro.db.schema import Column, ColumnType, SchemaError, TableSchema
from repro.db.table import Table


@pytest.fixture()
def people() -> Table:
    schema = TableSchema(
        "people",
        [
            Column("person_id", ColumnType.INT),
            Column("name", ColumnType.STRING, width=16),
            Column("city", ColumnType.STRING, width=16),
        ],
        primary_key="person_id",
    )
    table = Table(schema)
    table.insert_many(
        [
            {"person_id": 1, "name": "ann", "city": "pune"},
            {"person_id": 2, "name": "bob", "city": "mumbai"},
            {"person_id": 3, "name": "carol", "city": "pune"},
        ]
    )
    return table


class TestInsert:
    def test_insert_fills_missing_columns_with_none(self, people):
        stored = people.insert({"person_id": 4})
        assert stored["name"] is None and stored["city"] is None

    def test_insert_rejects_unknown_columns(self, people):
        with pytest.raises(SchemaError, match="unknown columns"):
            people.insert({"person_id": 5, "height": 180})

    def test_insert_many_returns_count(self, people):
        added = people.insert_many(
            [{"person_id": 10 + i, "name": f"p{i}"} for i in range(4)]
        )
        assert added == 4
        assert len(people) == 7

    def test_len_and_iter(self, people):
        assert len(people) == 3
        assert sum(1 for _ in people) == 3


class TestLookup:
    def test_primary_key_lookup_returns_copy(self, people):
        row = people.lookup_pk(2)
        assert row["name"] == "bob"
        row["name"] = "mutated"
        assert people.lookup_pk(2)["name"] == "bob"

    def test_primary_key_miss_returns_none(self, people):
        assert people.lookup_pk(99) is None

    def test_lookup_without_pk_index_raises(self):
        schema = TableSchema("t", [Column("a")])
        with pytest.raises(SchemaError, match="no primary key"):
            Table(schema).lookup_pk(1)

    def test_scan_yields_copies(self, people):
        for row in people.scan():
            row["name"] = "x"
        assert people.lookup_pk(1)["name"] == "ann"


class TestMaintenance:
    def test_distinct_count(self, people):
        assert people.distinct_count("city") == 2
        assert people.distinct_count("person_id") == 3

    def test_distinct_count_unknown_column(self, people):
        with pytest.raises(SchemaError):
            people.distinct_count("unknown")

    def test_clear(self, people):
        people.clear()
        assert len(people) == 0
        assert people.lookup_pk(1) is None

    def test_row_width_follows_schema(self, people):
        assert people.row_width == 8 + 16 + 16

    def test_update_rows(self, people):
        changed = people.update_rows(
            lambda row: row["city"] == "pune", {"city": "pnq"}
        )
        assert changed == 2
        assert people.lookup_pk(1)["city"] == "pnq"
        assert people.lookup_pk(2)["city"] == "mumbai"

    def test_update_rows_with_callable_value(self, people):
        people.update_rows(
            lambda row: True, {"name": lambda row: row["name"].upper()}
        )
        assert people.lookup_pk(3)["name"] == "CAROL"

    def test_update_rows_unknown_column(self, people):
        with pytest.raises(SchemaError):
            people.update_rows(lambda row: True, {"missing": 1})
