"""Unit tests for the Database facade."""

import pytest

from repro.db.database import Database, QueryResult
from repro.db.schema import Column, ColumnType


class TestDDLAndDML:
    def test_create_table_registers_schema(self, simple_database):
        assert simple_database.schema.has_table("employee")
        assert simple_database.row_count("employee") == 6

    def test_table_lookup_error(self, simple_database):
        with pytest.raises(KeyError, match="no table named"):
            simple_database.table("ghost")

    def test_insert_returns_count(self):
        database = Database()
        database.create_table("t", [Column("a", ColumnType.INT)])
        assert database.insert("t", [{"a": 1}, {"a": 2}]) == 2


class TestQueries:
    def test_execute_sql_returns_query_result(self, simple_database):
        result = simple_database.execute_sql("select * from employee")
        assert isinstance(result, QueryResult)
        assert result.cardinality == 6
        assert result.byte_size == 6 * result.row_width
        assert len(list(result)) == 6

    def test_execute_sql_with_parameters(self, simple_database):
        result = simple_database.execute_sql(
            "select * from employee where dept_id = ?", (1,)
        )
        assert sorted(r["name"] for r in result.rows) == ["ann", "bob"]

    def test_execute_sql_join(self, simple_database):
        result = simple_database.execute_sql(
            "select * from employee e join department d on e.dept_id = d.dept_id"
        )
        assert result.cardinality == 5

    def test_query_counter_increments(self, simple_database):
        simple_database.reset_counters()
        simple_database.execute_sql("select * from employee")
        simple_database.execute_sql("select * from department")
        assert simple_database.queries_executed == 2
        simple_database.reset_counters()
        assert simple_database.queries_executed == 0

    def test_estimates_expose_cost_model_inputs(self, simple_database):
        estimate = simple_database.estimate_sql("select * from employee")
        assert estimate.cardinality == 6
        assert estimate.row_width > 0
        assert 0 <= estimate.first_row_time <= estimate.last_row_time
        assert estimate.byte_size == estimate.cardinality * estimate.row_width

    def test_estimate_of_aggregate_is_single_row(self, simple_database):
        estimate = simple_database.estimate_sql("select count(*) from employee")
        assert estimate.cardinality == 1


class TestUpdates:
    def test_update_with_where_parameter(self, simple_database):
        changed = simple_database.execute_update_sql(
            "update employee set salary = 99 where emp_id = ?", (1,)
        )
        assert changed == 1
        row = simple_database.execute_sql(
            "select * from employee where emp_id = 1"
        ).rows[0]
        assert row["salary"] == 99

    def test_update_without_where_touches_all_rows(self, simple_database):
        changed = simple_database.execute_update_sql(
            "update department set budget = 1"
        )
        assert changed == 3

    def test_update_with_literal_where(self, simple_database):
        changed = simple_database.execute_update_sql(
            "update employee set age = 30 where name = 'ann'"
        )
        assert changed == 1

    def test_update_with_row_expression(self, simple_database):
        changed = simple_database.execute_update_sql(
            "update employee set salary = salary + 1 where emp_id = 1"
        )
        assert changed == 1
        row = simple_database.execute_sql(
            "select * from employee where emp_id = 1"
        ).rows[0]
        assert row["salary"] == 91.0

    def test_update_with_multiple_assignments(self, simple_database):
        changed = simple_database.execute_update_sql(
            "update employee set salary = ?, age = age + ? where emp_id = ?",
            (70, 2, 2),
        )
        assert changed == 1
        row = simple_database.execute_sql(
            "select * from employee where emp_id = 2"
        ).rows[0]
        assert row["salary"] == 70

    def test_update_assignments_are_simultaneous(self, simple_database):
        # SQL semantics: both right-hand sides read the pre-update row, so
        # this swaps the two columns.
        changed = simple_database.execute_update_sql(
            "update employee set salary = age, age = salary where emp_id = 1"
        )
        assert changed == 1
        row = simple_database.execute_sql(
            "select * from employee where emp_id = 1"
        ).rows[0]
        assert row["salary"] == 31
        assert row["age"] == 90.0

    def test_update_with_compound_where(self, simple_database):
        changed = simple_database.execute_update_sql(
            "update employee set salary = 0 where salary > 0 and age > 200"
        )
        assert changed == 0

    def test_unsupported_update_raises(self, simple_database):
        with pytest.raises(ValueError, match="unsupported UPDATE"):
            simple_database.execute_update_sql("update t set a =")

    def test_non_update_statement_raises(self, simple_database):
        with pytest.raises(ValueError, match="unsupported UPDATE"):
            simple_database.execute_update_sql("select * from employee")

    def test_missing_parameter_raises(self, simple_database):
        with pytest.raises(ValueError, match="missing parameter"):
            simple_database.execute_update_sql(
                "update employee set salary = ? where emp_id = 1"
            )
