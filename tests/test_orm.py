"""Unit tests for the Hibernate-like ORM substrate."""

import pytest

from repro.appsim.runtime import AppRuntime
from repro.net.network import FAST_LOCAL
from repro.orm.mapping import (
    EntityDefinition,
    Field,
    ManyToOne,
    MappingError,
    MappingRegistry,
)
from repro.workloads import tpcds


class TestMappingRegistry:
    def test_register_and_lookup(self, registry):
        assert registry.has_entity("Order")
        assert registry.entity("Order").table == "orders"
        assert registry.by_table("customer").entity == "Customer"
        assert registry.entities() == ["Customer", "Order"]

    def test_unknown_entity_raises(self, registry):
        with pytest.raises(MappingError, match="unknown entity"):
            registry.entity("Ghost")

    def test_duplicate_registration_rejected(self):
        registry = MappingRegistry()
        definition = EntityDefinition("E", "e", "id")
        registry.register(definition)
        with pytest.raises(MappingError, match="already registered"):
            registry.register(EntityDefinition("E", "e2", "id"))

    def test_relation_lookup(self, registry):
        order = registry.entity("Order")
        relation = order.relation("customer")
        assert relation.target_entity == "Customer"
        assert relation.join_column == "o_customer_sk"
        assert order.has_relation("customer")
        assert not order.has_relation("supplier")
        with pytest.raises(MappingError, match="no relation"):
            order.relation("supplier")


@pytest.fixture()
def session(orders_runtime):
    return orders_runtime.orm


class TestSession:
    def test_load_all_returns_every_row(self, session):
        orders = session.load_all("Order")
        assert len(orders) == 200
        assert orders[0].entity_name == "Order"

    def test_load_all_issues_one_query(self, orders_runtime):
        orders_runtime.reset()
        orders_runtime.orm.load_all("Customer")
        assert orders_runtime.connection.stats.queries == 1

    def test_entity_attribute_access(self, session):
        order = session.load_all("Order")[0]
        assert isinstance(order.o_id, int)
        assert order.get("o_id") == order.o_id
        assert order.id == order.o_id

    def test_missing_attribute_raises(self, session):
        order = session.load_all("Order")[0]
        with pytest.raises(AttributeError):
            _ = order.nonexistent_column

    def test_lazy_relation_issues_a_query(self, orders_runtime):
        orders_runtime.reset()
        session = orders_runtime.orm
        order = session.load_all("Order")[0]
        before = orders_runtime.connection.stats.queries
        customer = order.customer
        after = orders_runtime.connection.stats.queries
        assert customer is not None
        assert after == before + 1
        assert customer.c_customer_sk == order.o_customer_sk

    def test_first_level_cache_prevents_repeat_queries(self, orders_runtime):
        orders_runtime.reset()
        session = orders_runtime.orm
        orders = session.load_all("Order")
        same_customer_orders = [
            o for o in orders if o.o_customer_sk == orders[0].o_customer_sk
        ]
        assert len(same_customer_orders) >= 1
        _ = same_customer_orders[0].customer
        queries_after_first = orders_runtime.connection.stats.queries
        for order in same_customer_orders:
            _ = order.customer
        assert orders_runtime.connection.stats.queries == queries_after_first
        assert session.cache_hits >= len(same_customer_orders) - 1

    def test_n_plus_one_behaviour_bounded_by_distinct_customers(
        self, orders_runtime
    ):
        orders_runtime.reset()
        session = orders_runtime.orm
        for order in session.load_all("Order"):
            _ = order.customer
        queries = orders_runtime.connection.stats.queries
        distinct = orders_runtime.database.table("orders").distinct_count(
            "o_customer_sk"
        )
        assert queries == 1 + distinct

    def test_get_uses_cache(self, orders_runtime):
        orders_runtime.reset()
        session = orders_runtime.orm
        first = session.get("Customer", 5)
        queries = orders_runtime.connection.stats.queries
        second = session.get("Customer", 5)
        assert first is second
        assert orders_runtime.connection.stats.queries == queries

    def test_get_missing_returns_none(self, session):
        assert session.get("Customer", 10_000) is None

    def test_native_sql_query(self, session):
        rows = session.execute_query("select count(*) from orders")
        assert rows[0]["count_all"] == 200 or list(rows[0].values())[0] == 200

    def test_clear_evicts_cache(self, orders_runtime):
        session = orders_runtime.orm
        session.get("Customer", 3)
        assert session.cache_size >= 1
        session.clear()
        assert session.cache_size == 0
