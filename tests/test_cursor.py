"""The PEP 249-shaped cursor and the connection's prepared execution path."""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.db.schema import Column, ColumnType
from repro.net.connection import CursorError, SimulatedConnection
from repro.net.network import FAST_LOCAL


def make_connection() -> SimulatedConnection:
    database = Database()
    database.create_table(
        "items",
        [
            Column("item_id", ColumnType.INT),
            Column("label", ColumnType.STRING, width=12),
            Column("grp", ColumnType.INT),
        ],
        primary_key="item_id",
    )
    database.insert(
        "items",
        [
            {"item_id": i, "label": f"item{i}", "grp": i % 3}
            for i in range(12)
        ],
    )
    database.analyze()
    return SimulatedConnection(database, FAST_LOCAL)


class TestCursorSelect:
    def test_execute_returns_cursor_and_fetchall(self):
        cursor = make_connection().cursor()
        rows = cursor.execute("select * from items where grp = ?", (1,)).fetchall()
        assert [r["item_id"] for r in rows] == [1, 4, 7, 10]
        assert cursor.rowcount == 4

    def test_fetchone_walks_the_result_set(self):
        cursor = make_connection().cursor()
        cursor.execute("select * from items where grp = 0")
        seen = []
        while (row := cursor.fetchone()) is not None:
            seen.append(row["item_id"])
        assert seen == [0, 3, 6, 9]
        assert cursor.fetchone() is None

    def test_fetchmany_respects_size_and_arraysize(self):
        cursor = make_connection().cursor()
        cursor.execute("select * from items")
        assert len(cursor.fetchmany(5)) == 5
        cursor.arraysize = 3
        assert len(cursor.fetchmany()) == 3
        assert len(cursor.fetchall()) == 4

    def test_iteration_yields_rows(self):
        cursor = make_connection().cursor()
        cursor.execute("select * from items where grp = 2")
        assert [row["item_id"] for row in cursor] == [2, 5, 8, 11]

    def test_description_names_columns(self):
        cursor = make_connection().cursor()
        cursor.execute("select label from items where item_id = 3")
        assert cursor.description is not None
        assert cursor.description[0][0] == "label"
        assert len(cursor.description[0]) == 7

    def test_description_populated_for_empty_result(self):
        cursor = make_connection().cursor()
        cursor.execute("select * from items where item_id = ?", (12345,))
        assert cursor.fetchall() == []
        assert cursor.description is not None
        assert [d[0] for d in cursor.description][:2] == ["item_id", "label"]

    def test_description_for_empty_projection(self):
        cursor = make_connection().cursor()
        cursor.execute("select label from items where item_id = ?", (12345,))
        assert cursor.description is not None
        assert cursor.description[0][0] == "label"

    def test_charges_the_virtual_clock(self):
        connection = make_connection()
        cursor = connection.cursor()
        cursor.execute("select * from items")
        assert connection.elapsed > 0
        assert connection.stats.queries == 1


class TestCursorUpdate:
    def test_update_sets_rowcount_without_result_set(self):
        cursor = make_connection().cursor()
        cursor.execute("update items set label = 'x' where grp = 0")
        assert cursor.rowcount == 4
        assert cursor.description is None
        with pytest.raises(CursorError, match="no result set"):
            cursor.fetchall()

    def test_executemany_accumulates_rowcount(self):
        connection = make_connection()
        cursor = connection.cursor()
        cursor.executemany(
            "update items set label = ? where item_id = ?",
            [("a", 1), ("b", 2), ("c", 99)],
        )
        assert cursor.rowcount == 2
        # One prepared statement served all three executions.
        assert connection.database.statement_cache.misses == 1

    def test_executemany_empty_sequence(self):
        cursor = make_connection().cursor()
        cursor.executemany("update items set grp = 0 where item_id = ?", [])
        assert cursor.rowcount == 0


class TestCursorLifecycle:
    def test_close_prevents_use(self):
        cursor = make_connection().cursor()
        cursor.close()
        with pytest.raises(CursorError, match="closed"):
            cursor.execute("select * from items")

    def test_context_manager_closes(self):
        connection = make_connection()
        with connection.cursor() as cursor:
            cursor.execute("select * from items")
        with pytest.raises(CursorError, match="closed"):
            cursor.fetchall()


class TestPreparedConnectionPath:
    def test_repeated_queries_parse_once(self):
        connection = make_connection()
        for key in range(6):
            connection.execute_query(
                "select * from items where item_id = ?", (key,)
            )
        cache = connection.database.statement_cache
        assert cache.misses == 1
        assert cache.hits == 5

    def test_single_estimate_per_statement(self):
        """The old driver estimated (and parsed) every call; now the
        plan-keyed estimate is computed once per prepared statement."""
        connection = make_connection()
        for key in range(6):
            connection.execute_query(
                "select * from items where item_id = ?", (key,)
            )
        statement = connection.prepare("select * from items where item_id = ?")
        assert statement.estimates_computed == 1
        assert statement.executions == 6

    def test_execute_lookup_reuses_one_prepared_statement(self):
        connection = make_connection()
        for key in range(8):
            connection.execute_lookup("items", "item_id", key)
        cache = connection.database.statement_cache
        # One miss to build the lookup statement; the per-(table, column)
        # cache then bypasses even the text-keyed lookup.
        assert cache.misses == 1
        assert cache.hits == 0
        statement = connection.lookup_statement("items", "item_id")
        assert statement.executions == 8

    def test_lookup_statement_refreshed_after_ddl(self):
        connection = make_connection()
        stale = connection.lookup_statement("items", "item_id")
        connection.database.create_table("other", [Column("a", ColumnType.INT)])
        fresh = connection.lookup_statement("items", "item_id")
        assert fresh is not stale
        result = connection.execute_lookup("items", "item_id", 4)
        assert result.rows[0]["label"] == "item4"

    def test_lookup_results_match_plain_query(self):
        connection = make_connection()
        lookup = connection.execute_lookup("items", "item_id", 5)
        plain = connection.execute_query(
            "select * from items where item_id = 5"
        )
        assert lookup.rows == plain.rows

    def test_cost_accounting_matches_estimate_components(self):
        connection = make_connection()
        statement = connection.prepare("select * from items")
        estimate = statement.estimate()
        result = connection.execute_prepared(statement)
        transfer = connection.network.transfer_time(result.byte_size)
        rest = max(0.0, estimate.last_row_time - estimate.first_row_time)
        expected = (
            connection.network.round_trip_seconds
            + estimate.first_row_time
            + max(transfer, rest)
        )
        assert connection.elapsed == pytest.approx(expected)
