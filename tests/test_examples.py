"""Smoke tests for the example scripts.

The examples are user-facing documentation; these tests keep them importable
and exercise their fast code paths so they do not rot as the library evolves.
The full scripts (which build larger databases) are meant to be run directly.
"""

import ast
import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_there_are_at_least_three_examples(self):
        assert len(EXAMPLE_FILES) >= 3
        names = {p.stem for p in EXAMPLE_FILES}
        assert "quickstart" in names

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_examples_parse_and_define_main(self, path):
        module_ast = ast.parse(path.read_text())
        functions = {
            node.name
            for node in module_ast.body
            if isinstance(node, ast.FunctionDef)
        }
        assert "main" in functions
        # Every example is guarded so importing it does not run the workload.
        guards = [
            node
            for node in module_ast.body
            if isinstance(node, ast.If)
            and "__main__" in ast.unparse(node.test)
        ]
        assert guards, f"{path.name} is missing an if __name__ == '__main__' guard"

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_examples_import_cleanly(self, path):
        module = load_example(path)
        assert callable(module.main)

    def test_quickstart_optimize_for_runs_small(self, capsys):
        quickstart = load_example(EXAMPLES_DIR / "quickstart.py")
        quickstart.optimize_for("slow-remote", num_orders=60, num_customers=30)
        output = capsys.readouterr().out
        assert "chosen strategy" in output
        assert "measured: original" in output

    def test_cost_model_tour_region_section_runs(self, capsys):
        tour = load_example(EXAMPLES_DIR / "cost_model_tour.py")
        tour.show_regions_and_fir()
        output = capsys.readouterr().out
        assert "fold expression" in output
        assert "dependent aggregations: True" in output

    def test_wilos_patterns_example_single_pattern(self, capsys):
        from repro.experiments.figure15 import run_pattern
        from repro.workloads.wilos import build_wilos_runtime
        from repro.workloads.wilos_programs import build_patterns

        runtime = build_wilos_runtime(scale=400)
        outcome = run_pattern(build_patterns()["B"], runtime)
        assert outcome.results_equivalent()
