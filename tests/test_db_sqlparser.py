"""Unit tests for the SQL parser."""

import pytest

from repro.db import algebra
from repro.db.expressions import BinaryOp, BooleanOp, ColumnRef, InList, IsNull, Literal
from repro.db.sqlparser import (
    Parameter,
    SQLSyntaxError,
    bind_parameters,
    count_parameters,
    parse_sql,
    tokenize,
)


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("select a, b from t where a >= 10")
        kinds = [t.kind for t in tokens]
        assert "name" in kinds and "op" in kinds and "number" in kinds

    def test_string_literal_with_escape(self):
        tokens = tokenize("select * from t where name = 'it''s'")
        strings = [t for t in tokens if t.kind == "string"]
        assert strings[0].text == "'it''s'"

    def test_unknown_character_raises(self):
        with pytest.raises(SQLSyntaxError, match="unexpected character"):
            tokenize("select # from t")


class TestSelectShapes:
    def test_select_star(self):
        plan = parse_sql("select * from orders")
        assert isinstance(plan, algebra.Scan)
        assert plan.table == "orders"

    def test_table_alias(self):
        plan = parse_sql("select * from orders o")
        assert isinstance(plan, algebra.Scan) and plan.alias == "o"

    def test_projection(self):
        plan = parse_sql("select month, sale_amt from sales")
        assert isinstance(plan, algebra.Project)
        assert plan.output_names == ["month", "sale_amt"]

    def test_projection_with_alias_and_expression(self):
        plan = parse_sql("select sale_amt * 2 as double_amt from sales")
        assert isinstance(plan, algebra.Project)
        assert plan.output_names == ["double_amt"]

    def test_where_clause(self):
        plan = parse_sql("select * from t where a = 1 and b > 2")
        assert isinstance(plan, algebra.Select)
        assert isinstance(plan.predicate, BooleanOp)

    def test_where_with_or_and_not(self):
        plan = parse_sql("select * from t where not a = 1 or b < 2")
        assert isinstance(plan, algebra.Select)

    def test_in_list(self):
        plan = parse_sql("select * from t where state in ('OPEN', 'CLOSED')")
        assert isinstance(plan.predicate, InList)
        assert plan.predicate.values == ("OPEN", "CLOSED")

    def test_is_null(self):
        plan = parse_sql("select * from t where x is not null")
        assert isinstance(plan.predicate, IsNull) and plan.predicate.negated

    def test_join_with_on(self):
        plan = parse_sql(
            "select * from orders o join customer c "
            "on o.o_customer_sk = c.c_customer_sk"
        )
        assert isinstance(plan, algebra.Join)
        assert isinstance(plan.condition, BinaryOp)
        assert plan.condition.left.qualifier == "o"

    def test_multiple_joins(self):
        plan = parse_sql(
            "select * from a join b on a.x = b.x join c on b.y = c.y"
        )
        assert isinstance(plan, algebra.Join)
        assert isinstance(plan.left, algebra.Join)

    def test_order_by_and_limit(self):
        plan = parse_sql("select * from t order by a desc, b limit 5")
        assert isinstance(plan, algebra.Limit) and plan.count == 5
        sort = plan.child
        assert isinstance(sort, algebra.Sort)
        assert sort.keys[0].ascending is False and sort.keys[1].ascending is True

    def test_group_by_with_aggregate(self):
        plan = parse_sql("select month, sum(sale_amt) from sales group by month")
        assert isinstance(plan, algebra.Project)
        aggregate = plan.child
        assert isinstance(aggregate, algebra.Aggregate)
        assert aggregate.group_by[0].name == "month"
        assert aggregate.aggregates[0].function == "sum"

    def test_scalar_aggregate(self):
        plan = parse_sql("select sum(sale_amt) from sales")
        assert isinstance(plan, algebra.Project)
        assert isinstance(plan.child, algebra.Aggregate)

    def test_count_star(self):
        plan = parse_sql("select count(*) from t")
        aggregate = plan.child
        assert aggregate.aggregates[0].function == "count"
        assert aggregate.aggregates[0].argument is None

    def test_case_insensitive_keywords(self):
        plan = parse_sql("SELECT * FROM t WHERE a = 1 ORDER BY a")
        assert isinstance(plan, algebra.Sort)


class TestErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "update t set a = 1",
            "select * from",
            "select from t",
            "select * from t where",
            "select * from t limit x",
            "select * from t extra garbage",
            "select max(*) from t",
        ],
    )
    def test_malformed_sql_raises(self, sql):
        with pytest.raises(SQLSyntaxError):
            parse_sql(sql)


class TestParameters:
    def test_parameter_counted(self):
        plan = parse_sql("select * from customer where c_customer_sk = ?")
        assert count_parameters(plan) == 1

    def test_bind_parameters(self):
        plan = parse_sql("select * from customer where c_customer_sk = ?")
        bound = bind_parameters(plan, (42,))
        assert count_parameters(bound) == 0
        assert isinstance(bound.predicate.right, Literal)
        assert bound.predicate.right.value == 42

    def test_bind_missing_parameter_raises(self):
        plan = parse_sql("select * from t where a = ? and b = ?")
        with pytest.raises(SQLSyntaxError, match="missing value"):
            bind_parameters(plan, (1,))

    def test_multiple_parameters_bound_in_order(self):
        plan = parse_sql("select * from t where a = ? and b = ?")
        bound = bind_parameters(plan, (1, 2))
        operands = bound.predicate.operands
        assert operands[0].right.value == 1 and operands[1].right.value == 2

    def test_unbound_parameter_cannot_evaluate(self):
        parameter = Parameter(0)
        with pytest.raises(SQLSyntaxError):
            parameter.evaluate({})
