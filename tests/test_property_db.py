"""Property-based tests for the database engine (hypothesis).

The executor is checked against brute-force Python implementations of the
same relational operations on randomly generated tables, the three
execution tiers (vectorized / compiled / interpreted) are checked to be
row-identical (values *and* order) over generated schemas and query shapes,
the SQL generator is checked to round-trip through the parser, and the
async / pipelined client paths are checked to be row-identical to the
synchronous path over generated workloads.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings, strategies as st

from repro.db import algebra
from repro.db.database import Database
from repro.db.executor import Executor
from repro.db.expressions import BinaryOp, BooleanOp, ColumnRef, IsNull, Literal
from repro.db.schema import Column, ColumnType
from repro.db.sqlgen import to_sql
from repro.db.sqlparser import parse_sql
from repro.net.connection import SimulatedConnection
from repro.net.network import FAST_LOCAL

# -- strategies ---------------------------------------------------------------

row_values = st.integers(min_value=0, max_value=9)

left_rows = st.lists(
    st.fixed_dictionaries({"k": row_values, "a": row_values}),
    min_size=0,
    max_size=30,
)
right_rows = st.lists(
    st.fixed_dictionaries({"k": row_values, "b": row_values}),
    min_size=0,
    max_size=30,
)


def build_database(left, right) -> Database:
    database = Database()
    database.create_table(
        "left_t", [Column("k", ColumnType.INT), Column("a", ColumnType.INT)]
    )
    database.create_table(
        "right_t", [Column("k", ColumnType.INT), Column("b", ColumnType.INT)]
    )
    database.insert("left_t", left)
    database.insert("right_t", right)
    database.analyze()
    return database


# -- properties ----------------------------------------------------------------


class TestExecutorAgainstBruteForce:
    @given(rows=left_rows, threshold=row_values)
    @settings(max_examples=60, deadline=None)
    def test_selection_matches_python_filter(self, rows, threshold):
        database = build_database(rows, [])
        result = database.execute_sql(
            f"select * from left_t where a > {threshold}"
        )
        expected = [r for r in rows if r["a"] > threshold]
        assert sorted((r["k"], r["a"]) for r in result.rows) == sorted(
            (r["k"], r["a"]) for r in expected
        )

    @given(left=left_rows, right=right_rows)
    @settings(max_examples=60, deadline=None)
    def test_equi_join_matches_nested_loops(self, left, right):
        database = build_database(left, right)
        result = database.execute_sql(
            "select * from left_t l join right_t r on l.k = r.k"
        )
        expected = [
            (lrow["k"], lrow["a"], rrow["b"])
            for lrow in left
            for rrow in right
            if lrow["k"] == rrow["k"]
        ]
        actual = [(r["l.k"], r["l.a"], r["r.b"]) for r in result.rows]
        assert sorted(actual) == sorted(expected)

    @given(rows=left_rows)
    @settings(max_examples=60, deadline=None)
    def test_sum_and_count_match_python(self, rows):
        database = build_database(rows, [])
        result = database.execute_sql(
            "select sum(a), count(*) from left_t"
        ).rows[0]
        expected_sum = sum(r["a"] for r in rows) if rows else None
        assert result["count_all"] == len(rows)
        if rows:
            assert result["sum_a"] == expected_sum
        else:
            assert result["sum_a"] is None

    @given(rows=left_rows)
    @settings(max_examples=60, deadline=None)
    def test_group_by_matches_python(self, rows):
        database = build_database(rows, [])
        result = database.execute_sql(
            "select k, count(*) from left_t group by k"
        )
        expected: dict[int, int] = {}
        for row in rows:
            expected[row["k"]] = expected.get(row["k"], 0) + 1
        actual = {r["k"]: r["count_all"] for r in result.rows}
        assert actual == expected

    @given(rows=left_rows)
    @settings(max_examples=60, deadline=None)
    def test_order_by_produces_sorted_output(self, rows):
        database = build_database(rows, [])
        result = database.execute_sql("select * from left_t order by a desc")
        values = [r["a"] for r in result.rows]
        assert values == sorted(values, reverse=True)

    @given(rows=left_rows, limit=st.integers(min_value=0, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_limit_never_exceeds_bound(self, rows, limit):
        database = build_database(rows, [])
        result = database.execute_sql(f"select * from left_t limit {limit}")
        assert result.cardinality == min(limit, len(rows))


class TestCardinalityEstimates:
    @given(left=left_rows, right=right_rows)
    @settings(max_examples=40, deadline=None)
    def test_estimates_are_non_negative_and_bounded(self, left, right):
        database = build_database(left, right)
        for sql in (
            "select * from left_t",
            "select * from left_t where a = 3",
            "select * from left_t l join right_t r on l.k = r.k",
            "select sum(a) from left_t",
        ):
            estimate = database.estimate_sql(sql)
            assert estimate.cardinality >= 0
            assert estimate.row_width > 0
            assert estimate.first_row_time <= estimate.last_row_time

    @given(left=left_rows)
    @settings(max_examples=40, deadline=None)
    def test_selection_estimate_never_exceeds_input(self, left):
        database = build_database(left, [])
        scan = database.estimate_sql("select * from left_t").cardinality
        filtered = database.estimate_sql(
            "select * from left_t where a = 1"
        ).cardinality
        assert filtered <= scan + 1e-9


class TestSqlRoundTrip:
    @given(
        columns=st.lists(
            st.sampled_from(["k", "a"]), min_size=1, max_size=2, unique=True
        ),
        threshold=row_values,
        descending=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_generated_sql_reparses_to_same_sql(self, columns, threshold, descending):
        sql = (
            f"select {', '.join(columns)} from left_t "
            f"where a >= {threshold} order by k{' desc' if descending else ''}"
        )
        rendered = to_sql(parse_sql(sql))
        assert to_sql(parse_sql(rendered)) == rendered

    @given(left=left_rows, threshold=row_values)
    @settings(max_examples=40, deadline=None)
    def test_roundtripped_query_gives_same_rows(self, left, threshold):
        database = build_database(left, [])
        sql = f"select * from left_t where a <= {threshold}"
        direct = database.execute_sql(sql).rows
        rendered = to_sql(parse_sql(sql))
        via_roundtrip = database.execute_sql(rendered).rows
        assert direct == via_roundtrip


COMPARISONS = ["=", "!=", "<", "<=", ">", ">="]

COLUMN_POOL = ["c0", "c1", "c2", "c3"]


@st.composite
def tier_case(draw):
    """A generated schema, rows (with NULLs), and a plan over them."""
    ncols = draw(st.integers(min_value=1, max_value=4))
    names = COLUMN_POOL[:ncols]
    value = st.one_of(st.none(), st.integers(min_value=-3, max_value=5))
    nrows = draw(st.integers(min_value=0, max_value=25))
    rows = [
        {name: draw(value) for name in names} for _ in range(nrows)
    ]
    alias = draw(st.sampled_from(["t", "x"]))
    plan: algebra.PlanNode = algebra.Scan("t", alias)
    column = lambda: ColumnRef(  # noqa: E731
        draw(st.sampled_from(names)),
        draw(st.sampled_from([None, alias])),
    )
    if draw(st.booleans()):
        predicate: object = BinaryOp(
            draw(st.sampled_from(COMPARISONS)),
            column(),
            Literal(draw(st.integers(min_value=-3, max_value=5))),
        )
        if draw(st.booleans()):
            predicate = BooleanOp(
                draw(st.sampled_from(["and", "or"])),
                (predicate, IsNull(column(), negated=draw(st.booleans()))),
            )
        plan = algebra.Select(plan, predicate)
    shape = draw(st.sampled_from(["plain", "project", "aggregate", "sort"]))
    if shape == "project":
        plan = algebra.Project(
            plan,
            (
                algebra.OutputColumn(column(), "out_a"),
                algebra.OutputColumn(
                    BinaryOp(
                        draw(st.sampled_from(["+", "-", "*"])),
                        column(),
                        Literal(draw(st.integers(min_value=1, max_value=3))),
                    ),
                    "out_b",
                ),
            ),
        )
    elif shape == "aggregate":
        plan = algebra.Aggregate(
            plan,
            group_by=(column(),) if draw(st.booleans()) else (),
            aggregates=(
                algebra.AggregateSpec(
                    draw(st.sampled_from(["sum", "min", "max", "avg", "count"])),
                    column(),
                    "agg",
                ),
                algebra.AggregateSpec("count", None, "n"),
            ),
        )
    elif shape == "sort":
        plan = algebra.Sort(
            plan,
            (
                algebra.SortKey(column(), draw(st.booleans())),
                algebra.SortKey(column(), draw(st.booleans())),
            ),
        )
        if draw(st.booleans()):
            plan = algebra.Limit(plan, draw(st.integers(min_value=0, max_value=10)))
    return names, rows, plan


class TestTierEquivalence:
    """vectorized ≡ compiled ≡ interpreted: identical rows, identical order."""

    @staticmethod
    def assert_tiers_agree(database: Database, plan: algebra.PlanNode) -> None:
        vectorized = Executor(database.tables, mode="vectorized")
        compiled = Executor(database.tables, mode="compiled")
        interpreted = Executor(database.tables, mode="interpreted")
        expected = interpreted.execute(plan)
        assert compiled.execute(plan) == expected
        assert vectorized.execute(plan) == expected

    @given(case=tier_case())
    @settings(max_examples=120, deadline=None)
    def test_generated_single_table_plans(self, case):
        names, rows, plan = case
        database = Database()
        database.create_table(
            "t", [Column(name, ColumnType.INT) for name in names]
        )
        database.insert("t", rows)
        database.analyze()
        self.assert_tiers_agree(database, plan)

    @given(
        left=left_rows,
        right=right_rows,
        threshold=row_values,
        wide=st.booleans(),
        filter_side=st.sampled_from(["left", "right", "none"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_generated_joins(self, left, right, threshold, wide, filter_side):
        database = build_database(left, right)
        join = algebra.Join(
            algebra.Scan("left_t", "l"),
            algebra.Scan("right_t", "r"),
            BinaryOp("=", ColumnRef("k", "l"), ColumnRef("k", "r")),
        )
        plan: algebra.PlanNode = join
        if filter_side == "left":
            plan = algebra.Select(
                plan, BinaryOp(">", ColumnRef("a", "l"), Literal(threshold))
            )
        elif filter_side == "right":
            plan = algebra.Select(
                plan, BinaryOp("<=", ColumnRef("b", "r"), Literal(threshold))
            )
        if not wide:
            plan = algebra.Project(
                plan,
                (
                    algebra.OutputColumn(ColumnRef("k", "l"), "k"),
                    algebra.OutputColumn(ColumnRef("a", "l"), "a"),
                    algebra.OutputColumn(ColumnRef("b", "r"), "b"),
                ),
            )
        self.assert_tiers_agree(database, plan)

    @given(left=left_rows, threshold=row_values)
    @settings(max_examples=40, deadline=None)
    def test_generated_sql_workload(self, left, threshold):
        database = build_database(left, [])
        for sql in (
            f"select * from left_t where a > {threshold}",
            f"select k, a * 2 as scaled from left_t where a != {threshold}",
            "select k, count(*), sum(a) from left_t group by k",
            "select * from left_t order by a desc, k asc",
            f"select * from left_t where a >= {threshold} limit 5",
        ):
            plan = parse_sql(sql)
            self.assert_tiers_agree(database, plan)


def build_sharded_database(
    left, right, shards: int = 3, mode: str = "vectorized"
) -> Database:
    """Like :func:`build_database`, but with both tables hash-sharded on k."""
    database = Database(execution_mode=mode)
    database.create_table(
        "left_t", [Column("k", ColumnType.INT), Column("a", ColumnType.INT)]
    )
    database.create_table(
        "right_t", [Column("k", ColumnType.INT), Column("b", ColumnType.INT)]
    )
    database.shard_table("left_t", "k", shards)
    database.shard_table("right_t", "k", shards)
    database.insert("left_t", left)
    database.insert("right_t", right)
    database.analyze()
    return database


def _canon(rows):
    """Order-insensitive row normalization (dict equality stays exact)."""
    return sorted(
        rows, key=lambda row: [(k, repr(v)) for k, v in sorted(row.items())]
    )


class TestShardedEquivalence:
    """Sharded execution ≡ unsharded execution, across all three tiers.

    Routed and fallback plans are row-identical *including order*;
    scatter-gather and partial-aggregate plans concatenate in shard order,
    so they are compared as normalized row sets — and exactly, including
    order, after a ``Sort`` whose keys are total (the distributed-engine
    ordering contract).  The three sharded tiers must agree exactly with
    each other in every case.
    """

    MODES = ("vectorized", "compiled", "interpreted")

    @staticmethod
    def assert_sharded_matches_unsharded(
        left, right, plan, shards, *, exact_order=False
    ) -> None:
        reference = Executor(
            build_database(left, right).tables, mode="interpreted"
        ).execute(plan)
        outputs = []
        for mode in TestShardedEquivalence.MODES:
            database = build_sharded_database(left, right, shards, mode=mode)
            outputs.append(database._executor.execute(plan))
        # The three sharded tiers agree exactly (same routing, same gather
        # order), and each matches the unsharded interpreted reference.
        assert outputs[1] == outputs[0]
        assert outputs[2] == outputs[0]
        if exact_order:
            assert outputs[0] == reference
        else:
            assert _canon(outputs[0]) == _canon(reference)

    @given(case=tier_case(), shards=st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_generated_single_table_plans_sharded(self, case, shards):
        names, rows, plan = case
        reference_db = Database()
        reference_db.create_table(
            "t", [Column(name, ColumnType.INT) for name in names]
        )
        reference_db.insert("t", rows)
        reference_db.analyze()
        reference = Executor(
            reference_db.tables, mode="interpreted"
        ).execute(plan)
        outputs = []
        for mode in self.MODES:
            database = Database(execution_mode=mode)
            database.create_table(
                "t", [Column(name, ColumnType.INT) for name in names]
            )
            database.shard_table("t", names[0], shards)
            database.insert("t", rows)
            database.analyze()
            outputs.append(database._executor.execute(plan))
        assert outputs[1] == outputs[0]
        assert outputs[2] == outputs[0]
        assert _canon(outputs[0]) == _canon(reference)

    @given(
        left=left_rows,
        right=right_rows,
        threshold=row_values,
        wide=st.booleans(),
        shards=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_generated_co_partitioned_joins_sharded(
        self, left, right, threshold, wide, shards
    ):
        join = algebra.Join(
            algebra.Scan("left_t", "l"),
            algebra.Scan("right_t", "r"),
            BinaryOp("=", ColumnRef("k", "l"), ColumnRef("k", "r")),
        )
        plan: algebra.PlanNode = algebra.Select(
            join, BinaryOp(">", ColumnRef("a", "l"), Literal(threshold))
        )
        if not wide:
            plan = algebra.Project(
                plan,
                (
                    algebra.OutputColumn(ColumnRef("k", "l"), "k"),
                    algebra.OutputColumn(ColumnRef("a", "l"), "a"),
                    algebra.OutputColumn(ColumnRef("b", "r"), "b"),
                ),
            )
        self.assert_sharded_matches_unsharded(left, right, plan, shards)

    @given(
        left=left_rows,
        shards=st.integers(min_value=1, max_value=4),
        descending=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_sort_with_total_keys_is_exactly_ordered(
        self, left, shards, descending
    ):
        # Unique shard-key values make the sort keys total, so sharded
        # output must match unsharded output exactly, order included.
        rows = [
            {"k": index, "a": row["a"]} for index, row in enumerate(left)
        ]
        plan = algebra.Sort(
            algebra.Select(
                algebra.Scan("left_t"),
                BinaryOp(">=", ColumnRef("a"), Literal(0)),
            ),
            (
                algebra.SortKey(ColumnRef("a"), not descending),
                algebra.SortKey(ColumnRef("k"), True),
            ),
        )
        self.assert_sharded_matches_unsharded(
            rows, [], plan, shards, exact_order=True
        )

    @given(
        left=left_rows,
        shards=st.integers(min_value=1, max_value=4),
        group=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_partial_aggregates_match_unsharded(self, left, shards, group):
        plan = algebra.Aggregate(
            algebra.Scan("left_t"),
            group_by=(ColumnRef("k"),) if group else (),
            aggregates=(
                algebra.AggregateSpec("count", None, "n"),
                algebra.AggregateSpec("sum", ColumnRef("a"), "total"),
                algebra.AggregateSpec("avg", ColumnRef("a"), "mean"),
                algebra.AggregateSpec("min", ColumnRef("a"), "low"),
                algebra.AggregateSpec("max", ColumnRef("a"), "high"),
            ),
        )
        self.assert_sharded_matches_unsharded(left, [], plan, shards)

    @given(
        left=left_rows,
        right=right_rows,
        shards=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_theta_join_fallback_is_row_identical(self, left, right, shards):
        # Two sharded tables under a theta join cannot be distributed: the
        # router falls back to the aggregate view, which preserves global
        # insertion order — so the result is *exactly* the unsharded one.
        plan = algebra.Join(
            algebra.Scan("left_t", "l"),
            algebra.Scan("right_t", "r"),
            BinaryOp("<", ColumnRef("k", "l"), ColumnRef("k", "r")),
        )
        self.assert_sharded_matches_unsharded(
            left, right, plan, shards, exact_order=True
        )

    @given(left=left_rows, shards=st.integers(min_value=1, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_prepared_point_routing_matches_unsharded(self, left, shards):
        database = build_sharded_database(left, [], shards)
        reference = build_database(left, [])
        statement = database.prepare("select * from left_t where k = ?")
        expected = reference.prepare("select * from left_t where k = ?")
        for key in sorted({row["k"] for row in left}) or [0]:
            assert _canon(statement.execute((key,)).rows) == _canon(
                expected.execute((key,)).rows
            )


#: Parameterized workload queries replayed through every client path: plain
#: filters, conjunctions, projections with arithmetic, grouped aggregates,
#: joins, and ordering — the shapes the slotted prepared path must cover.
def _workload_queries(threshold):
    return [
        ("select * from left_t where a > ?", (threshold,)),
        ("select * from left_t where a >= ? and k <= ?", (threshold, 7)),
        ("select k, a * ? as scaled from left_t where a != ?", (2, threshold)),
        ("select k, count(*), sum(a) from left_t group by k", ()),
        (
            "select l.k, l.a, r.b from left_t l join right_t r on l.k = r.k "
            "where l.a > ?",
            (threshold,),
        ),
        ("select * from left_t order by a desc, k asc", ()),
    ]


class TestClientPathEquivalence:
    """Async and pipelined execution are row-identical to the sync path."""

    @given(left=left_rows, right=right_rows, threshold=row_values)
    @settings(max_examples=25, deadline=None)
    def test_pipelined_rows_match_sync(self, left, right, threshold):
        database = build_database(left, right)
        queries = _workload_queries(threshold)
        sync_connection = SimulatedConnection(database, FAST_LOCAL)
        expected = [
            sync_connection.execute_query(sql, params).rows
            for sql, params in queries
        ]
        pipelined = SimulatedConnection(database, FAST_LOCAL)
        with pipelined.pipeline() as pipe:
            handles = [pipe.execute(sql, params) for sql, params in queries]
        assert [handle.rows for handle in handles] == expected
        assert pipelined.stats.round_trips == 1

    @given(left=left_rows, right=right_rows, threshold=row_values)
    @settings(max_examples=25, deadline=None)
    def test_async_rows_match_sync(self, left, right, threshold):
        from repro.api import connect

        database = build_database(left, right)
        queries = _workload_queries(threshold)
        engine = connect(database=database, network="fast-local")
        expected = [
            engine.connect().execute_query(sql, params).rows
            for sql, params in queries
        ]
        aengine = engine.aio()

        async def main():
            connections = [aengine.connect() for _ in queries]
            results = await asyncio.gather(
                *[
                    connection.execute(sql, params)
                    for connection, (sql, params) in zip(connections, queries)
                ]
            )
            return [result.rows for result in results]

        assert asyncio.run(main()) == expected

    @given(left=left_rows, threshold=row_values)
    @settings(max_examples=25, deadline=None)
    def test_executemany_matches_per_tuple_execution(self, left, threshold):
        database = build_database(left, [])
        keys = sorted({row["k"] for row in left}) or [0]
        sql = "select * from left_t where k = ? and a >= ?"
        per_tuple = SimulatedConnection(database, FAST_LOCAL)
        expected = [
            per_tuple.execute_query(sql, (key, threshold)).rows
            for key in keys
        ]
        pipelined = SimulatedConnection(database, FAST_LOCAL)
        with pipelined.pipeline() as pipe:
            handles = [pipe.execute(sql, (key, threshold)) for key in keys]
        assert [handle.rows for handle in handles] == expected
        # The cursor's executemany retains the last result set.
        cursor = SimulatedConnection(database, FAST_LOCAL).cursor()
        cursor.executemany(sql, [(key, threshold) for key in keys])
        assert cursor.fetchall() == expected[-1]

    @given(left=left_rows, threshold=row_values)
    @settings(max_examples=20, deadline=None)
    def test_prepared_slots_match_fresh_parse(self, left, threshold):
        database = build_database(left, [])
        sql = "select * from left_t where a > ?"
        from repro.db.sqlparser import bind_parameters

        statement = database.prepare(sql)
        for params in [(threshold,), (0,), (9,), (threshold,)]:
            bound = bind_parameters(parse_sql(sql), params)
            expected = database.execute_plan(bound, sql=sql).rows
            assert statement.execute(params).rows == expected
