"""End-to-end integration tests: source in → optimized source out → execution.

These tests exercise the full pipeline the paper describes: region analysis,
Region DAG construction, F-IR transformation, cost-based choice, code
generation, and finally execution of the generated program against the
simulated runtime — asserting both semantic equivalence with the original
program and the expected performance relationship.
"""

import pytest

from repro.core.catalog import CostParameters
from repro.core.optimizer import CobraOptimizer
from repro.net.network import FAST_LOCAL, SLOW_REMOTE
from repro.workloads import programs, tpcds
from repro.workloads.wilos import build_wilos_runtime
from repro.workloads.wilos_programs import build_patterns


def rewrite_and_run(runtime, source, function_name, driver, extra_globals=None):
    parameters = CostParameters.for_network(runtime.network)
    optimizer = CobraOptimizer(
        runtime.database,
        parameters,
        registry=runtime.registry if runtime.registry.entities() else None,
    )
    result = optimizer.optimize(source, function_name=function_name)
    namespace = dict(extra_globals or {})
    exec(compile(result.rewritten_source, "<rewritten>", "exec"), namespace)
    rewritten = namespace[function_name]
    rewritten_run = runtime.measure(lambda rt: driver(rt, rewritten))
    original_namespace = dict(extra_globals or {})
    exec(compile(source, "<original>", "exec"), original_namespace)
    original = original_namespace[function_name]
    original_run = runtime.measure(lambda rt: driver(rt, original))
    return result, original_run, rewritten_run


class TestMotivatingExample:
    def test_slow_network_rewrite_is_equivalent_and_faster(self):
        runtime = tpcds.build_runtime(
            num_orders=400, num_customers=80, network=SLOW_REMOTE
        )
        result, original_run, rewritten_run = rewrite_and_run(
            runtime,
            programs.P0_SOURCE,
            "process_orders",
            lambda rt, fn: sorted(fn(rt)),
            extra_globals={"my_func": programs.my_func},
        )
        assert original_run.result == rewritten_run.result
        assert rewritten_run.elapsed_seconds < original_run.elapsed_seconds
        assert result.primary_choice() in {"sql-join", "prefetch"}

    def test_fast_network_rewrite_is_equivalent_and_not_slower(self):
        runtime = tpcds.build_runtime(
            num_orders=300, num_customers=60, network=FAST_LOCAL
        )
        result, original_run, rewritten_run = rewrite_and_run(
            runtime,
            programs.P0_SOURCE,
            "process_orders",
            lambda rt, fn: sorted(fn(rt)),
            extra_globals={"my_func": programs.my_func},
        )
        assert original_run.result == rewritten_run.result
        assert rewritten_run.elapsed_seconds <= original_run.elapsed_seconds

    def test_cobra_choice_matches_best_measured_variant_slow_network(self):
        runtime = tpcds.build_runtime(
            num_orders=400, num_customers=80, network=SLOW_REMOTE
        )
        measured = {
            label: runtime.measure(fn).elapsed_seconds
            for label, fn in programs.VARIANTS.items()
        }
        parameters = CostParameters.for_network(SLOW_REMOTE)
        optimizer = CobraOptimizer(
            runtime.database, parameters, registry=tpcds.build_registry()
        )
        result = optimizer.optimize(programs.P0_SOURCE)
        label = {
            "original": "Hibernate(P0)",
            "sql-join": "SQL Query(P1)",
            "prefetch": "Prefetching(P2)",
        }[result.primary_choice()]
        best_label = min(measured, key=measured.get)
        # The chosen variant must be within 25% of the best measured variant
        # (the cost model is an estimate, not an oracle).
        assert measured[label] <= measured[best_label] * 1.25


class TestWilosPatternsEndToEnd:
    @pytest.fixture(scope="class")
    def runtime(self):
        return build_wilos_runtime(scale=800, network=FAST_LOCAL)

    @pytest.mark.parametrize("pattern_id", list("ABCDEF"))
    def test_rewrite_preserves_results(self, runtime, pattern_id):
        pattern = build_patterns()[pattern_id]
        result, original_run, rewritten_run = rewrite_and_run(
            runtime,
            pattern.source,
            pattern.function_name,
            pattern.driver,
        )
        assert original_run.result == rewritten_run.result

    @pytest.mark.parametrize("pattern_id", list("ABCDEF"))
    def test_rewrite_not_slower_than_original(self, runtime, pattern_id):
        pattern = build_patterns()[pattern_id]
        _, original_run, rewritten_run = rewrite_and_run(
            runtime,
            pattern.source,
            pattern.function_name,
            pattern.driver,
        )
        # Allow 10% slack for cost-model/measurement mismatch on near-ties.
        assert (
            rewritten_run.elapsed_seconds
            <= original_run.elapsed_seconds * 1.10 + 1e-6
        )

    def test_pattern_b_extra_aggregate_rejected(self, runtime):
        pattern = build_patterns()["B"]
        parameters = CostParameters.for_network(FAST_LOCAL)
        optimizer = CobraOptimizer(runtime.database, parameters)
        result = optimizer.optimize(
            pattern.source, function_name=pattern.function_name
        )
        assert result.primary_choice() == "original"

    def test_pattern_e_prefetch_chosen(self, runtime):
        pattern = build_patterns()["E"]
        parameters = CostParameters.for_network(FAST_LOCAL).with_amortization(50)
        optimizer = CobraOptimizer(runtime.database, parameters)
        result = optimizer.optimize(
            pattern.source, function_name=pattern.function_name
        )
        assert result.primary_choice() == "prefetch"
