"""Tests for the ski-rental dynamic prefetching extension."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.appsim.dynamic_prefetch import DynamicPrefetcher, dynamic_lookup_program
from repro.net.network import SLOW_REMOTE
from repro.workloads import tpcds


@pytest.fixture()
def runtime():
    return tpcds.build_runtime(num_orders=100, num_customers=200, network=SLOW_REMOTE)


class TestDynamicPrefetcher:
    def test_few_accesses_stay_with_point_lookups(self, runtime):
        runtime.reset()
        prefetcher = DynamicPrefetcher(runtime, "customer", "c_customer_sk")
        for key in (1, 2):
            row = prefetcher.lookup(key)
            assert row["c_customer_sk"] == key
        assert not prefetcher.has_prefetched
        assert prefetcher.stats.point_lookups == 2

    def test_many_accesses_trigger_prefetch(self, runtime):
        runtime.reset()
        prefetcher = DynamicPrefetcher(runtime, "customer", "c_customer_sk")
        for key in range(1, 101):
            prefetcher.lookup((key % 200) + 1)
        assert prefetcher.has_prefetched
        assert prefetcher.stats.cache_hits > 0
        assert prefetcher.stats.prefetch_trigger_access is not None

    def test_lookup_returns_same_rows_as_direct_query(self, runtime):
        runtime.reset()
        prefetcher = DynamicPrefetcher(runtime, "customer", "c_customer_sk")
        keys = [(i % 200) + 1 for i in range(60)]
        rows = [prefetcher.lookup(key) for key in keys]
        expected = [
            runtime.database.execute_sql(
                "select * from customer where c_customer_sk = ?", (key,)
            ).rows[0]["c_customer_sk"]
            for key in keys
        ]
        assert [row["c_customer_sk"] for row in rows] == expected

    def test_missing_key_returns_none_before_prefetch(self, runtime):
        runtime.reset()
        prefetcher = DynamicPrefetcher(runtime, "customer", "c_customer_sk")
        assert prefetcher.lookup(10_000) is None

    def test_group_lookups(self, runtime):
        runtime.reset()
        prefetcher = DynamicPrefetcher(runtime, "orders", "o_customer_sk")
        group = prefetcher.lookup_group(1)
        assert all(row["o_customer_sk"] == 1 for row in group)
        # Force the prefetch and check grouped cache answers match.
        for key in range(1, 80):
            prefetcher.lookup_group((key % 200) + 1)
        assert prefetcher.has_prefetched
        cached = prefetcher.lookup_group(1)
        assert len(cached) == len(group)

    def test_invalid_threshold_rejected(self, runtime):
        with pytest.raises(ValueError):
            DynamicPrefetcher(runtime, "customer", "c_customer_sk", 0)


class TestSkiRentalBound:
    @given(accesses=st.integers(min_value=1, max_value=300))
    @settings(max_examples=10, deadline=None)
    def test_total_cost_within_twice_offline_optimum(self, accesses):
        """The classical 2-competitive bound, measured on the virtual clock."""
        runtime = tpcds.build_runtime(
            num_orders=50, num_customers=150, network=SLOW_REMOTE
        )
        keys = [(i % 150) + 1 for i in range(accesses)]

        def dynamic(rt):
            return dynamic_lookup_program(rt, "customer", "c_customer_sk", keys)[0]

        def never_prefetch(rt):
            return [
                rt.execute_query(
                    "select * from customer where c_customer_sk = ?", (key,)
                )[0]
                for key in keys
            ]

        def always_prefetch(rt):
            rt.prefetch("customer", "c_customer_sk", "pf")
            return [rt.lookup(key, "pf") for key in keys]

        dynamic_time = runtime.measure(dynamic).elapsed_seconds
        never_time = runtime.measure(never_prefetch).elapsed_seconds
        always_time = runtime.measure(always_prefetch).elapsed_seconds
        offline_optimum = min(never_time, always_time)
        # Deterministic ski rental is 2-competitive up to the granularity of a
        # single "rent": the last point lookup may overshoot the break-even
        # threshold by at most one lookup's cost.
        single_lookup = never_time / accesses
        assert dynamic_time <= 2.0 * offline_optimum + single_lookup + 1e-6
