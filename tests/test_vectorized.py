"""Unit tests for the vectorized batch execution tier.

Covers mode selection, row-identical results against both row tiers over
every operator, late-materialization layouts, per-subtree fallback to the
compiled tier, error parity, tier counters, prepared-statement slot reuse,
and the columnar-view plumbing the tier scans.
"""

from __future__ import annotations

import pytest

from repro.db import algebra
from repro.db.database import Database
from repro.db.executor import ExecutionError, Executor
from repro.db.expressions import (
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Expression,
    ExpressionError,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    Not,
)
from repro.db.schema import Column, ColumnType
from repro.db.vectorized import ColumnBatch, _batch_from_rows


def make_database() -> Database:
    database = Database()
    database.create_table(
        "orders",
        [
            Column("o_id", ColumnType.INT),
            Column("o_c_id", ColumnType.INT),
            Column("o_total", ColumnType.FLOAT),
            Column("o_status", ColumnType.STRING, width=8),
        ],
        primary_key="o_id",
    )
    database.create_table(
        "customers",
        [
            Column("c_id", ColumnType.INT),
            Column("c_name", ColumnType.STRING, width=16),
        ],
        primary_key="c_id",
    )
    database.insert(
        "orders",
        [
            {
                "o_id": i,
                "o_c_id": i % 5 if i % 7 else None,
                "o_total": float(i * 3 % 11) if i % 4 else None,
                "o_status": "OPEN" if i % 3 else "DONE",
            }
            for i in range(40)
        ],
    )
    database.insert(
        "customers",
        [{"c_id": i, "c_name": f"customer-{i}"} for i in range(5)],
    )
    database.analyze()
    return database


def executors(database: Database) -> tuple[Executor, Executor, Executor]:
    return (
        Executor(database.tables, mode="vectorized"),
        Executor(database.tables, mode="compiled"),
        Executor(database.tables, mode="interpreted"),
    )


def assert_tiers_agree(database: Database, plan: algebra.PlanNode) -> list:
    vectorized, compiled, interpreted = executors(database)
    expected = interpreted.execute(plan)
    assert compiled.execute(plan) == expected
    assert vectorized.execute(plan) == expected
    return expected


class TestModeSelection:
    def test_default_mode_is_vectorized(self):
        database = make_database()
        assert Executor(database.tables).mode == "vectorized"
        assert database.execution_mode == "vectorized"

    def test_compiled_false_means_interpreted(self):
        database = make_database()
        assert Executor(database.tables, compiled=False).mode == "interpreted"

    def test_unknown_mode_rejected(self):
        database = make_database()
        with pytest.raises(ValueError, match="unknown execution mode"):
            Executor(database.tables, mode="turbo")

    def test_database_execution_mode_overrides_compiled_flag(self):
        database = Database(execution_mode="interpreted")
        assert database.execution_mode == "interpreted"
        assert database.compiled_execution is False
        assert Database(execution_mode="compiled").compiled_execution is True


class TestTierCounters:
    def test_vectorized_plan_counts_vectorized(self):
        database = make_database()
        executor = Executor(database.tables, mode="vectorized")
        plan = algebra.Select(
            algebra.Scan("orders", "o"),
            BinaryOp(">", ColumnRef("o_total", "o"), Literal(2.0)),
        )
        executor.execute(plan)
        executor.execute(plan)
        assert executor.tier_counts["vectorized"] == 2
        assert executor.tier_counts["compiled"] == 0
        assert executor.vectorized_stats["executions"] == 2
        assert executor.vectorized_stats["fallbacks"] == 0

    def test_unvectorizable_plan_falls_back_to_compiled(self):
        database = make_database()
        executor = Executor(database.tables, mode="vectorized")
        # Theta joins have no vectorized lowering.
        plan = algebra.Join(
            algebra.Scan("orders", "o"),
            algebra.Scan("customers", "c"),
            BinaryOp("<", ColumnRef("o_c_id", "o"), ColumnRef("c_id", "c")),
        )
        rows = executor.execute(plan)
        assert rows == Executor(database.tables, mode="compiled").execute(plan)
        assert executor.tier_counts["vectorized"] == 0
        assert executor.tier_counts["compiled"] == 1
        assert executor.vectorized_stats["fallbacks"] == 1

    def test_unsupported_subtree_falls_back_per_subtree(self):
        database = make_database()
        executor = Executor(database.tables, mode="vectorized")
        theta_join = algebra.Join(
            algebra.Scan("orders", "o"),
            algebra.Scan("customers", "c"),
            BinaryOp("<", ColumnRef("o_c_id", "o"), ColumnRef("c_id", "c")),
        )
        # The Sort above the theta join still runs vectorized; the join
        # subtree executes compiled and is adapted into a batch.
        plan = algebra.Sort(theta_join, (algebra.SortKey(ColumnRef("o_id"), False),))
        rows = executor.execute(plan)
        assert rows == Executor(database.tables, mode="compiled").execute(plan)
        assert executor.tier_counts["vectorized"] == 1
        assert executor.vectorized_stats["subtree_fallbacks"] == 1

    def test_interpreted_mode_counts_interpreted(self):
        database = make_database()
        executor = Executor(database.tables, mode="interpreted")
        executor.execute(algebra.Scan("orders"))
        assert executor.tier_counts == {
            "vectorized": 0,
            "compiled": 0,
            "interpreted": 1,
        }


class TestFallbackReasons:
    """Why the vectorized tier fell back, as counters per reason."""

    def test_theta_join_reason(self):
        database = make_database()
        executor = Executor(database.tables, mode="vectorized")
        plan = algebra.Join(
            algebra.Scan("orders", "o"),
            algebra.Scan("customers", "c"),
            BinaryOp("<", ColumnRef("o_c_id", "o"), ColumnRef("c_id", "c")),
        )
        executor.execute(plan)
        executor.execute(plan)  # the cached lowering keeps the reason
        assert executor.vectorized_stats["fallback_reasons"] == {
            "theta_join": 2
        }

    def test_unknown_function_reason(self):
        database = make_database()
        executor = Executor(database.tables, mode="vectorized")
        plan = algebra.Project(
            algebra.Scan("orders"),
            (
                algebra.OutputColumn(
                    FunctionCall("abs", (FunctionCall("nope", ()),)), "out"
                ),
            ),
        )
        with pytest.raises(ExpressionError):
            executor.execute(plan)
        assert (
            executor.vectorized_stats["fallback_reasons"]["unknown_function"]
            == 1
        )

    def test_kernel_error_reason(self):
        database = make_database()
        executor = Executor(database.tables, mode="vectorized")
        # o_total contains NULLs mixed with floats: comparing against a
        # string raises inside the kernel, re-runs compiled, and raises the
        # row-tier error to the caller.
        plan = algebra.Select(
            algebra.Scan("orders"),
            BinaryOp(">", ColumnRef("o_total"), Literal("oops")),
        )
        with pytest.raises(TypeError):
            executor.execute(plan)
        assert executor.vectorized_stats["fallback_reasons"] == {
            "kernel_error": 1
        }

    def test_subtree_fallback_counts_its_reason(self):
        database = make_database()
        executor = Executor(database.tables, mode="vectorized")
        theta_join = algebra.Join(
            algebra.Scan("orders", "o"),
            algebra.Scan("customers", "c"),
            BinaryOp("<", ColumnRef("o_c_id", "o"), ColumnRef("c_id", "c")),
        )
        plan = algebra.Sort(
            theta_join, (algebra.SortKey(ColumnRef("o_id"), False),)
        )
        executor.execute(plan)
        assert executor.vectorized_stats["fallback_reasons"] == {
            "theta_join": 1
        }
        assert executor.vectorized_stats["subtree_fallbacks"] == 1

    def test_reasons_surface_in_database_and_engine_stats(self):
        from repro.api import connect

        database = make_database()
        engine = connect(database=database)
        with engine.cursor() as cursor:
            cursor.execute("select * from orders where o_total > 2.0")
            cursor.fetchall()
        plan = algebra.Join(
            algebra.Scan("orders", "o"),
            algebra.Scan("customers", "c"),
            BinaryOp("<", ColumnRef("o_c_id", "o"), ColumnRef("c_id", "c")),
        )
        database.execute_plan(plan)
        reasons = database.execution_stats()["vectorized"]["fallback_reasons"]
        assert reasons == {"theta_join": 1}
        assert (
            engine.stats()["execution"]["vectorized"]["fallback_reasons"]
            == reasons
        )

    def test_cli_stats_render_fallback_reasons(self, tmp_path, capsys):
        import io

        from repro import cli

        program = tmp_path / "program.py"
        program.write_text(
            "def report(runtime):\n"
            "    return runtime.query('select * from orders limit 1')\n"
        )
        out = io.StringIO()
        cli.main(
            ["optimize", str(program), "--stats", "--shards", "2"], out=out
        )
        rendered = out.getvalue()
        assert "execution.vectorized.fallback_reasons" in rendered
        assert "sharding.routed" in rendered


class TestOperatorEquivalence:
    def test_scan_layout(self):
        database = make_database()
        rows = assert_tiers_agree(database, algebra.Scan("orders", "o"))
        assert set(rows[0]) == {
            "o_id",
            "o_c_id",
            "o_total",
            "o_status",
            "o.o_id",
            "o.o_c_id",
            "o.o_total",
            "o.o_status",
        }

    def test_filter_conjunction_with_nulls(self):
        database = make_database()
        plan = algebra.Select(
            algebra.Scan("orders", "o"),
            BooleanOp(
                "and",
                (
                    BinaryOp(">", ColumnRef("o_total", "o"), Literal(1.0)),
                    BinaryOp("=", ColumnRef("o_status", "o"), Literal("OPEN")),
                ),
            ),
        )
        rows = assert_tiers_agree(database, plan)
        assert rows  # non-trivial selection

    def test_or_not_isnull_inlist(self):
        database = make_database()
        predicate = BooleanOp(
            "or",
            (
                IsNull(ColumnRef("o_total")),
                Not(InList(ColumnRef("o_status"), ("DONE",))),
                BinaryOp("<", ColumnRef("o_id"), Literal(3)),
            ),
        )
        plan = algebra.Select(algebra.Scan("orders"), predicate)
        assert_tiers_agree(database, plan)

    def test_projection_arithmetic_and_functions(self):
        database = make_database()
        plan = algebra.Project(
            algebra.Scan("orders", "o"),
            (
                algebra.OutputColumn(
                    BinaryOp("*", ColumnRef("o_total", "o"), Literal(2.0)),
                    "doubled",
                ),
                algebra.OutputColumn(
                    FunctionCall("coalesce", (ColumnRef("o_total"), Literal(-1.0))),
                    "total_or_default",
                ),
                algebra.OutputColumn(
                    FunctionCall("lower", (ColumnRef("o_status"),)), "status"
                ),
            ),
        )
        assert_tiers_agree(database, plan)

    def test_wide_equi_join_with_null_keys(self):
        database = make_database()
        plan = algebra.Join(
            algebra.Scan("orders", "o"),
            algebra.Scan("customers", "c"),
            BinaryOp("=", ColumnRef("o_c_id", "o"), ColumnRef("c_id", "c")),
        )
        rows = assert_tiers_agree(database, plan)
        # NULL keys never join.
        assert all(row["o.o_c_id"] is not None for row in rows)

    def test_join_with_duplicate_build_keys(self):
        database = make_database()
        # Build side is orders keyed by o_c_id: each key has many rows,
        # exercising the bucket (non-unique) probe path.
        plan = algebra.Join(
            algebra.Scan("customers", "c"),
            algebra.Scan("orders", "o"),
            BinaryOp("=", ColumnRef("c_id", "c"), ColumnRef("o_c_id", "o")),
        )
        assert_tiers_agree(database, plan)

    def test_join_condition_written_right_to_left(self):
        database = make_database()
        plan = algebra.Join(
            algebra.Scan("customers", "c"),
            algebra.Scan("orders", "o"),
            BinaryOp("=", ColumnRef("o_c_id", "o"), ColumnRef("c_id", "c")),
        )
        assert_tiers_agree(database, plan)

    def test_bare_name_collision_keeps_left_value(self):
        database = Database()
        database.create_table(
            "l", [Column("k", ColumnType.INT), Column("v", ColumnType.INT)]
        )
        database.create_table(
            "r", [Column("k", ColumnType.INT), Column("v", ColumnType.INT)]
        )
        database.insert("l", [{"k": 1, "v": 10}, {"k": 2, "v": 20}])
        database.insert("r", [{"k": 1, "v": 100}, {"k": 2, "v": 200}])
        plan = algebra.Join(
            algebra.Scan("l", "a"),
            algebra.Scan("r", "b"),
            BinaryOp("=", ColumnRef("k", "a"), ColumnRef("k", "b")),
        )
        rows = assert_tiers_agree(database, plan)
        assert all(row["v"] == row["a.v"] for row in rows)

    def test_filter_above_join(self):
        database = make_database()
        join = algebra.Join(
            algebra.Scan("orders", "o"),
            algebra.Scan("customers", "c"),
            BinaryOp("=", ColumnRef("o_c_id", "o"), ColumnRef("c_id", "c")),
        )
        plan = algebra.Select(
            algebra.Select(
                join, BinaryOp(">", ColumnRef("o_total", "o"), Literal(2.0))
            ),
            BinaryOp("!=", ColumnRef("c_name", "c"), Literal("customer-0")),
        )
        assert_tiers_agree(database, plan)

    def test_grouped_and_scalar_aggregates(self):
        database = make_database()
        grouped = algebra.Aggregate(
            algebra.Scan("orders"),
            group_by=(ColumnRef("o_c_id"),),
            aggregates=(
                algebra.AggregateSpec("sum", ColumnRef("o_total"), "total"),
                algebra.AggregateSpec("avg", ColumnRef("o_total"), "avg_total"),
                algebra.AggregateSpec("count", None, "n"),
                algebra.AggregateSpec("min", ColumnRef("o_id"), "first_id"),
                algebra.AggregateSpec("max", ColumnRef("o_id"), "last_id"),
            ),
        )
        assert_tiers_agree(database, grouped)
        scalar = algebra.Aggregate(
            algebra.Scan("orders"),
            group_by=(),
            aggregates=(
                algebra.AggregateSpec("sum", ColumnRef("o_total"), "total"),
                algebra.AggregateSpec("count", None, "n"),
            ),
        )
        assert_tiers_agree(database, scalar)

    def test_multi_key_group_by(self):
        database = make_database()
        plan = algebra.Aggregate(
            algebra.Scan("orders", "o"),
            group_by=(ColumnRef("o_c_id", "o"), ColumnRef("o_status", "o")),
            aggregates=(algebra.AggregateSpec("count", None, "n"),),
        )
        assert_tiers_agree(database, plan)

    def test_multi_key_sort_with_nulls_and_limit(self):
        database = make_database()
        plan = algebra.Limit(
            algebra.Sort(
                algebra.Scan("orders"),
                (
                    algebra.SortKey(ColumnRef("o_total"), False),
                    algebra.SortKey(ColumnRef("o_id"), True),
                ),
            ),
            7,
        )
        assert_tiers_agree(database, plan)

    def test_aggregate_over_join_pipeline(self):
        database = make_database()
        join = algebra.Join(
            algebra.Scan("orders", "o"),
            algebra.Scan("customers", "c"),
            BinaryOp("=", ColumnRef("o_c_id", "o"), ColumnRef("c_id", "c")),
        )
        plan = algebra.Aggregate(
            join,
            group_by=(ColumnRef("c_name", "c"),),
            aggregates=(
                algebra.AggregateSpec("sum", ColumnRef("o_total", "o"), "total"),
            ),
        )
        assert_tiers_agree(database, plan)

    def test_empty_table_shapes(self):
        database = make_database()
        database.table("orders").clear()
        plans = [
            algebra.Scan("orders"),
            algebra.Select(
                algebra.Scan("orders"),
                BinaryOp(">", ColumnRef("o_total"), Literal(0.0)),
            ),
            algebra.Aggregate(
                algebra.Scan("orders"),
                group_by=(),
                aggregates=(algebra.AggregateSpec("count", None, "n"),),
            ),
            algebra.Join(
                algebra.Scan("orders", "o"),
                algebra.Scan("customers", "c"),
                BinaryOp("=", ColumnRef("o_c_id", "o"), ColumnRef("c_id", "c")),
            ),
        ]
        for plan in plans:
            assert_tiers_agree(database, plan)


class TestErrorParity:
    def test_unknown_table_raises(self):
        database = make_database()
        executor = Executor(database.tables, mode="vectorized")
        with pytest.raises(ExecutionError, match="unknown table"):
            executor.execute(algebra.Scan("missing"))

    def test_unknown_right_table_raises_with_empty_probe(self):
        database = make_database()
        database.table("orders").clear()
        executor = Executor(database.tables, mode="vectorized")
        plan = algebra.Join(
            algebra.Scan("orders", "o"),
            algebra.Scan("missing", "m"),
            BinaryOp("=", ColumnRef("o_c_id", "o"), ColumnRef("id", "m")),
        )
        with pytest.raises(ExecutionError, match="unknown table"):
            executor.execute(plan)

    def test_unresolvable_sort_key_error_identical_across_tiers(self):
        database = make_database()
        plan = algebra.Sort(
            algebra.Scan("orders", "o"),
            (algebra.SortKey(ColumnRef("nope"), True),),
        )
        messages = set()
        for mode in Executor.MODES:
            executor = Executor(database.tables, mode=mode)
            with pytest.raises(ExpressionError) as excinfo:
                executor.execute(plan)
            messages.add(str(excinfo.value))
        # Not just the same error type: the same message (which lists the
        # row keys), in every tier.
        assert len(messages) == 1

    def test_unknown_column_error_matches_row_tiers(self):
        database = make_database()
        executor = Executor(database.tables, mode="vectorized")
        plan = algebra.Project(
            algebra.Scan("orders"),
            (algebra.OutputColumn(ColumnRef("nope"), "nope"),),
        )
        with pytest.raises(ExpressionError, match="not found"):
            executor.execute(plan)
        # The failure fell back to (and was raised by) the compiled tier.
        assert executor.vectorized_stats["fallbacks"] == 1


class TestPreparedStatementsVectorized:
    def test_slot_replay_is_row_identical_and_lowered_once(self):
        database = make_database()
        statement = database.prepare(
            "select o_id, o_total from orders where o_total > ? order by o_id"
        )
        first = statement.execute((2.0,)).rows
        second = statement.execute((5.0,)).rows
        assert first != second
        vectorized = database._executor._vectorized
        assert vectorized is not None
        assert vectorized.executions >= 2
        # Both executions reuse one cached lowering of the template plan.
        assert statement._exec_plan in vectorized._ops
        interpreted = Executor(database.tables, mode="interpreted")
        from repro.db.sqlparser import bind_parameters, parse_sql

        for params, rows in [((2.0,), first), ((5.0,), second)]:
            bound = bind_parameters(
                parse_sql(
                    "select o_id, o_total from orders where o_total > ? "
                    "order by o_id"
                ),
                params,
            )
            assert interpreted.execute(bound) == rows

    def test_engine_stats_report_tiers(self):
        from repro.api import connect

        engine = connect(database=make_database())
        with engine.cursor() as cursor:
            cursor.execute("select o_id from orders where o_total > ?", (1.0,))
            cursor.fetchall()
        stats = engine.stats()
        assert stats["execution"]["mode"] == "vectorized"
        assert stats["execution"]["tiers"]["vectorized"] >= 1
        engine.close()


class TestColumnarInvalidation:
    def test_vectorized_sees_inserts(self):
        database = make_database()
        executor = Executor(database.tables, mode="vectorized")
        plan = algebra.Select(
            algebra.Scan("orders"),
            BinaryOp("=", ColumnRef("o_id"), Literal(999)),
        )
        assert executor.execute(plan) == []
        database.insert(
            "orders",
            [{"o_id": 999, "o_c_id": 1, "o_total": 5.0, "o_status": "OPEN"}],
        )
        assert len(executor.execute(plan)) == 1

    def test_vectorized_sees_updates_and_clear(self):
        database = make_database()
        executor = Executor(database.tables, mode="vectorized")
        plan = algebra.Select(
            algebra.Scan("orders"),
            BinaryOp("=", ColumnRef("o_status"), Literal("VOID")),
        )
        assert executor.execute(plan) == []
        database.table("orders").update_rows(
            lambda row: row["o_id"] == 3, {"o_status": "VOID"}
        )
        assert len(executor.execute(plan)) == 1
        database.table("orders").clear()
        assert executor.execute(plan) == []


class TestBatchKernels:
    """compile_batch agrees element-for-element with evaluate."""

    def batch(self):
        rows = [
            {"a": 1, "b": 2.0, "s": "x"},
            {"a": None, "b": 0.0, "s": "y"},
            {"a": 3, "b": None, "s": None},
        ]
        return rows, _batch_from_rows(rows)

    def resolver(self, column):
        return lambda batch: batch.column_values(column)

    @pytest.mark.parametrize(
        "expression",
        [
            BinaryOp("+", ColumnRef("a"), Literal(10)),
            BinaryOp("*", Literal(2), ColumnRef("a")),
            BinaryOp(">", ColumnRef("a"), Literal(1)),
            BinaryOp("=", ColumnRef("s"), Literal("x")),
            BinaryOp("<", ColumnRef("a"), ColumnRef("b")),
            BooleanOp(
                "and",
                (IsNull(ColumnRef("a")), BinaryOp(">", ColumnRef("b"), Literal(-1.0))),
            ),
            BooleanOp(
                "or",
                (IsNull(ColumnRef("b")), BinaryOp("=", ColumnRef("a"), Literal(1))),
            ),
            Not(IsNull(ColumnRef("s"))),
            IsNull(ColumnRef("b"), negated=True),
            InList(ColumnRef("a"), (1, 3)),
            FunctionCall("upper", (ColumnRef("s"),)),
            FunctionCall("coalesce", (ColumnRef("a"), ColumnRef("b"), Literal(0))),
            Literal(7),
        ],
    )
    def test_kernel_matches_interpreter(self, expression):
        rows, batch = self.batch()
        kernel = expression.compile_batch(self.resolver)
        assert kernel is not None
        assert kernel(batch) == [expression.evaluate(row) for row in rows]

    def test_unknown_function_is_not_vectorizable(self):
        assert FunctionCall("median", (ColumnRef("a"),)).compile_batch(
            self.resolver
        ) is None

    def test_unsupported_expression_type_is_not_vectorizable(self):
        class Custom(Expression):
            def evaluate(self, row):
                return 1

        assert Custom().compile_batch(self.resolver) is None
        assert (
            BinaryOp("+", Custom(), ColumnRef("a")).compile_batch(self.resolver)
            is None
        )


class TestColumnBatch:
    def test_take_composes_selections_sharing_vectors(self):
        array_a = [10, 11, 12, 13]
        array_b = ["w", "x", "y", "z"]
        batch = ColumnBatch(
            {"a": (array_a, None), "b": (array_b, None)}, 4, ("a", "b")
        )
        taken = batch.take([3, 1])
        assert taken.values_for("a") == [13, 11]
        assert taken.values_for("b") == ["z", "x"]
        # Both columns share one selection object.
        assert taken.columns["a"][1] is taken.columns["b"][1]
        again = taken.take([1])
        assert again.values_for("a") == [11]
        assert again.values_for("b") == ["x"]

    def test_resolution_mirrors_column_ref_semantics(self):
        batch = ColumnBatch(
            {"k": ([1], None), "t.k": ([1], None), "t.v": ([2], None)},
            1,
            ("k", "t.k", "t.v"),
        )
        assert batch.resolve(ColumnRef("k", "t")) == "t.k"
        assert batch.resolve(ColumnRef("k")) == "k"
        assert batch.resolve(ColumnRef("v")) == "t.v"  # unique suffix
        assert batch.resolve(ColumnRef("missing")) is None


class TestContextCacheLRU:
    def test_eviction_is_lru_not_wholesale(self):
        database = make_database()
        executor = Executor(database.tables, mode="compiled")
        limit = Executor.COMPILE_CACHE_LIMIT
        hot = algebra.Select(
            algebra.Scan("orders", "o"),
            BinaryOp(">", ColumnRef("o_total", "o"), Literal(-1.0)),
        )
        executor.execute(hot)
        hot_keys = set(executor._context_cache)
        for value in range(limit + 16):
            executor.execute(hot)  # keep the hot entries recently used
            executor.execute(
                algebra.Select(
                    algebra.Scan("orders", "o"),
                    BinaryOp(">", ColumnRef("o_total", "o"), Literal(float(value))),
                )
            )
        assert len(executor._context_cache) <= limit
        # The hot shape survived the churn instead of being flushed.
        assert hot_keys <= set(executor._context_cache)
