"""Unit tests for the Region AND-OR DAG (memo, dedup, alternatives)."""

import pytest

from repro.core.dag import RegionDag
from repro.core.region_analysis import analyze_program
from repro.core.rules import make_context, region_from_source
from repro.workloads import tpcds
from repro.workloads.programs import P0_SOURCE, P1_SOURCE


def build_dag(source, registry=None):
    info = analyze_program(source, registry=registry)
    dag = RegionDag()
    dag.build(info.region)
    return info, dag


class TestInitialDag:
    def test_root_group_exists(self, registry):
        _, dag = build_dag(P0_SOURCE, registry)
        assert dag.root is not None
        assert dag.root.alternatives[0].kind == "function"

    def test_every_group_starts_with_one_alternative(self, registry):
        _, dag = build_dag(P0_SOURCE, registry)
        assert all(len(g.alternatives) == 1 for g in dag.iter_groups())

    def test_group_and_node_counts(self, registry):
        _, dag = build_dag(P0_SOURCE, registry)
        assert dag.group_count == dag.node_count
        assert dag.group_count >= 6  # function, seq, blocks, loop, body

    def test_identical_statements_share_a_group(self):
        source = """
def f(rt):
    x = compute()
    y = 1
    x = compute()
    return x
"""
        _, dag = build_dag(source)
        # The two identical `x = compute()` statements map to the same block
        # node (Volcano-style sharing), so groups < statements.
        block_nodes = [n for n in dag.iter_nodes() if n.kind == "block"]
        sources = [n.payload.source for n in block_nodes]
        assert len(sources) == len(set(sources))


class TestAlternatives:
    def test_add_alternative_creates_new_nodes(self, registry):
        info, dag = build_dag(P0_SOURCE, registry)
        loop_group = next(
            g
            for g in dag.iter_groups()
            if any(n.kind == "loop" for n in g.alternatives)
        )
        context = make_context(info)
        replacement = region_from_source(
            "result.extend(rt.execute_query('select * from orders'))", context
        )
        node = dag.add_alternative(loop_group, replacement, strategy="sql-translation")
        assert node is not None
        assert node.strategy == "sql-translation"
        assert len(loop_group.alternatives) == 2

    def test_duplicate_alternative_not_added_twice(self, registry):
        info, dag = build_dag(P0_SOURCE, registry)
        loop_group = next(
            g
            for g in dag.iter_groups()
            if any(n.kind == "loop" for n in g.alternatives)
        )
        context = make_context(info)
        replacement = region_from_source(
            "result.extend(rt.execute_query('select * from orders'))", context
        )
        first = dag.add_alternative(loop_group, replacement, strategy="s")
        second = dag.add_alternative(loop_group, replacement, strategy="s")
        assert first is not None
        assert second is None
        assert len(loop_group.alternatives) == 2

    def test_alternative_sharing_reuses_existing_blocks(self, registry):
        # The P1 rewrite contains `result = []`, which already exists in P0's
        # DAG (the paper's Figure 6c shows P0.B2 shared by all alternatives).
        info, dag = build_dag(P0_SOURCE, registry)
        groups_before = dag.group_count
        context = make_context(info)
        alternative = region_from_source(
            "result = []\n"
            "rows = rt.execute_query('select * from orders')",
            context,
        )
        dag.add_alternative(dag.root, alternative, strategy="x")
        block_sources = [
            n.payload.source for n in dag.iter_nodes() if n.kind == "block"
        ]
        assert block_sources.count("result = []") == 1
        assert dag.group_count > groups_before

    def test_alternatives_at_root(self, registry):
        _, dag = build_dag(P1_SOURCE, registry)
        assert len(dag.alternatives_at_root()) == 1

    def test_alternatives_at_root_requires_build(self):
        with pytest.raises(Exception):
            RegionDag().alternatives_at_root()


class TestTermination:
    def test_reinserting_the_same_program_is_stable(self, registry):
        info, dag = build_dag(P0_SOURCE, registry)
        nodes_before = dag.node_count
        dag.insert_region(info.region)
        assert dag.node_count == nodes_before

    def test_cyclic_alternative_insertion_terminates(self, registry):
        # Adding A as an alternative of B and B as an alternative of A must
        # not blow up: duplicate detection stops the process.
        info, dag = build_dag(P0_SOURCE, registry)
        context = make_context(info)
        region_a = region_from_source("x = 1\ny = 2", context)
        region_b = region_from_source("y = 2\nx = 1", context)
        group = dag.insert_region(region_a)
        for _ in range(5):
            dag.add_alternative(group, region_b, strategy="swap")
            dag.add_alternative(group, region_a, strategy="swap")
        assert len(group.alternatives) <= 3
