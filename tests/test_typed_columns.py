"""Typed / dictionary-encoded columnar storage and fused-pipeline codegen.

Covers the physical-layout inference (``encode_column`` and the storage-mode
knob), the lifecycle of the encoded views across mutation and shard
rehoming, the wide-row template cache, bit-identical results across every
{storage mode} x {codegen, kernel} x {execution tier} combination (sharded
and unsharded), the new codegen observability counters, and the optional
numpy filter backend including its graceful degradation without numpy.
"""

from __future__ import annotations

from array import array

import pytest

from repro.db import vector_backend
from repro.db.database import Database
from repro.db.schema import Column, ColumnType
from repro.db.table import STORAGE_MODES, Table, encode_column
from repro.db.vector_backend import resolve_backend


def make_database(**kwargs) -> Database:
    database = Database(**kwargs)
    database.create_table(
        "orders",
        [
            Column("o_id", ColumnType.INT),
            Column("o_c_id", ColumnType.INT),
            Column("o_total", ColumnType.FLOAT),
            Column("o_status", ColumnType.STRING, width=8),
        ],
        primary_key="o_id",
    )
    database.create_table(
        "customers",
        [
            Column("c_id", ColumnType.INT),
            Column("c_name", ColumnType.STRING, width=16),
        ],
        primary_key="c_id",
    )
    database.insert(
        "orders",
        [
            {
                "o_id": i,
                "o_c_id": i % 7 if i % 11 else None,
                "o_total": float(i * 3 % 17) if i % 5 else None,
                "o_status": ("OPEN", "DONE", "HOLD")[i % 3],
            }
            for i in range(240)
        ],
    )
    database.insert(
        "customers",
        [{"c_id": i, "c_name": f"customer-{i}"} for i in range(7)],
    )
    database.analyze()
    return database


#: Codegen-eligible spines ([Project|Aggregate] -> Select* -> Scan): the
#: property workload the zero-``codegen_unsupported`` gate runs over.
CODEGEN_QUERIES = [
    "select * from orders where o_total > 3.0",
    "select * from orders where o_total >= 2.0 and o_status = 'OPEN'",
    "select o_id, o_total from orders where o_c_id = 3",
    "select o_id, o_total * 2 as doubled from orders where o_total is not null",
    "select o_id from orders where o_status != 'DONE'",
    "select o_id, o_status from orders where o_c_id is null",
    "select o_c_id, sum(o_total) as total, count(*) as n, avg(o_total) as "
    "avg_total from orders where o_total > 1.0 group by o_c_id",
    "select o_status, count(*) as n from orders group by o_status",
    "select o_status, min(o_total) as lo, max(o_total) as hi from orders "
    "group by o_status",
    "select o_c_id, o_status, count(*) as n from orders group by "
    "o_c_id, o_status",
]

#: Shapes beyond the codegen subset (joins, sorts): kernel or row-tier
#: served, included in the equivalence sweep only.
EXTRA_QUERIES = [
    "select o.o_id, c.c_name from orders o join customers c "
    "on o.o_c_id = c.c_id where o.o_total > 8.0",
    "select * from orders where o_total > 5.0 order by o_total desc limit 7",
]


def canon(rows):
    key = lambda r: sorted((k, repr(v)) for k, v in r.items())  # noqa: E731
    return sorted(rows, key=key)


class TestEncodingInference:
    def test_int_column_gets_int64_sidecar(self):
        data = encode_column([1, 2, 3], "typed")
        assert data.encoding == "int64"
        assert data.typed == array("q", [1, 2, 3])
        assert data.nulls is None
        assert list(data) == [1, 2, 3]  # boxed values always present

    def test_null_bitmap_marks_null_rows(self):
        data = encode_column([1, None, 3, None], "typed")
        assert data.encoding == "int64"
        assert data.typed == array("q", [1, 0, 3, 0])
        assert data.nulls is not None
        null_rows = [
            i for i in range(4) if data.nulls[i >> 3] & (1 << (i & 7))
        ]
        assert null_rows == [1, 3]

    def test_float_column_gets_float64_sidecar(self):
        data = encode_column([1.5, None, 2.5], "typed")
        assert data.encoding == "float64"
        assert data.typed == array("d", [1.5, 0.0, 2.5])
        assert data.nulls is not None

    def test_strings_dictionary_encode_in_dictionary_mode(self):
        data = encode_column(["a", "b", None, "a"], "dictionary")
        assert data.encoding == "dict"
        assert list(data.codes) == [0, 1, -1, 0]
        assert data.dictionary == ["a", "b"]
        assert data.code_of == {"a": 0, "b": 1}

    def test_strings_stay_boxed_in_typed_mode(self):
        data = encode_column(["a", "b"], "typed")
        assert data.encoding == "boxed"
        assert data.typed is None

    @pytest.mark.parametrize(
        "values",
        [
            [1, 2.5],  # mixed numeric kinds
            [True, False],  # bool round-trips only boxed
            [1 << 80, 2],  # too wide for int64
            [],  # no rows, nothing to infer
            [{"k": 1}],  # arbitrary objects
        ],
    )
    def test_unsupported_shapes_fall_back_to_boxed(self, values):
        data = encode_column(values, "dictionary")
        assert data.encoding == "boxed"
        assert list(data) == values

    def test_boxed_mode_never_builds_sidecars(self):
        data = encode_column([1, 2, 3], "boxed")
        assert data.encoding == "boxed"
        assert data.typed is None


class TestStorageModes:
    def test_unknown_mode_rejected(self):
        database = make_database()
        with pytest.raises(ValueError, match="unknown storage mode"):
            database.table("orders").set_storage_mode("arrow")

    @pytest.mark.parametrize(
        "mode,expected",
        [
            ("boxed", {"o_id": "boxed", "o_status": "boxed"}),
            ("typed", {"o_id": "int64", "o_status": "boxed"}),
            ("dictionary", {"o_id": "int64", "o_status": "dict"}),
        ],
    )
    def test_mode_controls_encodings(self, mode, expected):
        table = make_database().table("orders")
        table.set_storage_mode(mode)
        table.columns()
        encodings = table.column_encodings()
        for name, encoding in expected.items():
            assert encodings[name] == encoding
        assert encodings["o_total"] == (
            "boxed" if mode == "boxed" else "float64"
        )

    def test_sharded_table_propagates_mode_to_partitions(self):
        database = make_database()
        database.shard_table("orders", "o_c_id", 3)
        sharded = database.table("orders")
        sharded.set_storage_mode("boxed")
        assert all(s.storage_mode == "boxed" for s in sharded.shards)
        sharded.set_storage_mode("dictionary")
        for shard in sharded.shards:
            assert shard.storage_mode == "dictionary"
            shard.columns()
            assert shard.column_encodings()["o_status"] == "dict"


class TestEncodedViewLifecycle:
    def test_dictionary_encoding_survives_version_bumps(self):
        table = make_database().table("orders")
        table.columns()
        assert table.column_encodings()["o_status"] == "dict"
        before = table.version
        table.insert({"o_id": 9001, "o_c_id": 1, "o_total": 2.0,
                      "o_status": "NEW"})
        assert table.version > before
        assert table.column_encodings() == {}  # stale view dropped
        store = table.columns()
        assert store["o_status"].encoding == "dict"
        assert store["o_status"].dictionary[-1] == "NEW"
        assert len(store["o_status"].codes) == len(table.rows)

    def test_dictionary_encoding_survives_shard_rehoming(self):
        database = make_database()
        database.shard_table("orders", "o_c_id", 3)
        sharded = database.table("orders")
        for shard in sharded.shards:
            shard.columns()
        # Move a row to a different shard (shard-key update => rehome).
        database.execute_update_sql(
            "update orders set o_c_id = 5 where o_id = 0"
        )
        for shard in sharded.shards:
            store = shard.columns()
            assert store["o_status"].encoding == "dict"
            assert len(store["o_status"].codes) == len(shard.rows)
        moved = sharded.shards[sharded.shard_index(5)]
        assert any(row["o_id"] == 0 for row in moved.rows)

    def test_wide_rows_cached_per_alias_and_version(self):
        table = make_database().table("orders")
        first = table.wide_rows("o")
        assert table.wide_rows("o") is first  # cached
        assert table.wide_rows("x") is not first  # per alias
        assert first[0]["o.o_id"] == first[0]["o_id"]
        table.insert({"o_id": 9002, "o_c_id": 2, "o_total": 1.0,
                      "o_status": "OPEN"})
        rebuilt = table.wide_rows("o")
        assert rebuilt is not first
        assert len(rebuilt) == len(table.rows)


class TestStorageTierEquivalence:
    """Bit-identical rows across storage modes, codegen on/off, and tiers."""

    @pytest.fixture(scope="class")
    def reference(self):
        database = make_database(execution_mode="interpreted")
        return {
            sql: database.execute_sql(sql).rows
            for sql in CODEGEN_QUERIES + EXTRA_QUERIES
        }

    @pytest.mark.parametrize("storage", STORAGE_MODES)
    @pytest.mark.parametrize("codegen", [True, False])
    @pytest.mark.parametrize("mode", ["vectorized", "compiled", "interpreted"])
    def test_unsharded_rows_identical(self, reference, storage, codegen, mode):
        database = make_database(execution_mode=mode)
        for table in database.tables.values():
            table.set_storage_mode(storage)
        vectorized = database._executor._vectorized
        if vectorized is not None:
            vectorized.codegen_enabled = codegen
        for sql in CODEGEN_QUERIES + EXTRA_QUERIES:
            assert database.execute_sql(sql).rows == reference[sql], (
                storage, codegen, mode, sql,
            )

    @pytest.mark.parametrize("storage", STORAGE_MODES)
    @pytest.mark.parametrize("codegen", [True, False])
    def test_sharded_rows_identical(self, reference, storage, codegen):
        database = make_database()
        database.shard_table("orders", "o_c_id", 3)
        database.shard_table("customers", "c_id", 3)
        for table in database.tables.values():
            table.set_storage_mode(storage)
        vectorized = database._executor._vectorized
        vectorized.codegen_enabled = codegen
        for key, executor in database._router._executors.items():
            if executor._vectorized is not None:
                executor._vectorized.codegen_enabled = codegen
        for sql in CODEGEN_QUERIES + EXTRA_QUERIES:
            got = database.execute_sql(sql).rows
            # New shard executors may have appeared; keep them in step.
            for executor in database._router._executors.values():
                if executor._vectorized is not None:
                    executor._vectorized.codegen_enabled = codegen
            assert canon(got) == canon(reference[sql]), (storage, codegen, sql)


class TestCodegenObservability:
    def test_property_workload_never_hits_codegen_unsupported(self):
        """CI gate: every eligible spine lowers; zero codegen fallbacks."""
        database = make_database()
        for sql in CODEGEN_QUERIES:
            statement = database.prepare(sql)
            statement.execute()
            assert statement.last_execution_path == "codegen", sql
        stats = database.execution_stats()["vectorized"]
        assert stats["fallback_reasons"].get("codegen_unsupported", 0) == 0
        assert stats["codegen_errors"] == 0
        assert stats["codegen_executions"] == len(CODEGEN_QUERIES)

    def test_pipeline_cache_hits_counted(self):
        database = make_database()
        statement = database.prepare("select * from orders where o_total > ?")
        statement.execute((3.0,))
        vectorized = database._executor._vectorized
        assert vectorized.pipelines_compiled == 1
        assert vectorized.codegen_cache_hits == 0
        statement.execute((5.0,))
        statement.execute((7.0,))
        assert vectorized.pipelines_compiled == 1
        assert vectorized.codegen_cache_hits == 2

    def test_storage_mode_change_recompiles_pipeline(self):
        database = make_database()
        statement = database.prepare("select * from orders where o_total > ?")
        statement.execute((3.0,))
        table = database.table("orders")
        table.set_storage_mode("boxed")
        statement.execute((3.0,))
        # Different column-layout signature => second compilation.
        assert database._executor._vectorized.pipelines_compiled == 2

    def test_kernel_path_reported_when_codegen_disabled(self):
        database = make_database()
        database._executor._vectorized.codegen_enabled = False
        statement = database.prepare("select * from orders where o_total > ?")
        statement.execute((3.0,))
        assert statement.last_tier == "vectorized"
        assert statement.last_execution_path == "kernel"

    def test_explain_analyze_reports_execution_path(self):
        database = make_database()
        result = database.explain_analyze(
            "select * from orders where o_total > 3.0"
        )
        assert "tier: vectorized" in result.render()
        assert "executed: vectorized via codegen" in result.render()
        assert result.as_dict()["execution"]["path"] == "codegen"

    def test_execution_stats_include_backend_and_encodings(self):
        database = make_database()
        database.execute_sql("select * from orders where o_total > 3.0")
        stats = database.execution_stats()["vectorized"]
        assert stats["backend"]["requested"] in ("python", "numpy")
        assert stats["encodings"].get("dict", 0) >= 1
        assert stats["encodings"].get("int64", 0) >= 1

    def test_sharded_stats_merge_codegen_counters(self):
        database = make_database()
        database.shard_table("orders", "o_c_id", 3)
        database.execute_sql("select * from orders where o_total > 3.0")
        stats = database.execution_stats()["vectorized"]
        # One codegen execution counted per shard that ran the pipeline.
        assert stats["codegen_executions"] >= 3
        assert stats["pipelines_compiled"] >= 3


class TestVectorBackendResolution:
    def test_unknown_backend_degrades_to_python(self):
        assert resolve_backend("arrow") == ("python", "python")

    def test_none_consults_environment(self, monkeypatch):
        monkeypatch.setenv(vector_backend.BACKEND_ENV, "numpy")
        requested, active = resolve_backend(None)
        assert requested == "numpy"
        assert active == ("numpy" if vector_backend.numpy_available()
                          else "python")

    def test_numpy_request_degrades_without_numpy(self, monkeypatch):
        monkeypatch.setattr(vector_backend, "_np", None)
        assert resolve_backend("numpy") == ("numpy", "python")
        assert vector_backend.make_filter_backend("numpy", lambda r: None) is None

    def test_database_set_vector_backend(self):
        database = make_database()
        database.set_vector_backend("numpy")
        vectorized = database._executor._vectorized
        assert vectorized.backend_requested == "numpy"
        expected = (
            "numpy" if vector_backend.numpy_available() else "python"
        )
        assert vectorized.backend == expected

    def test_engine_builder_vector_backend(self):
        from repro.api.engine import Engine

        engine = (
            Engine.builder()
            .orders_workload(num_orders=200)
            .vector_backend("numpy")
            .build()
        )
        stats = engine.database.execution_stats()["vectorized"]
        assert stats["backend"]["requested"] == "numpy"


@pytest.mark.skipif(
    not vector_backend.numpy_available(), reason="numpy not installed"
)
class TestNumpyFilterBackend:
    def _database(self) -> Database:
        database = make_database(vector_backend="numpy")
        # Force the kernel path so the numpy position filters (a kernel
        # accelerator) actually run instead of the fused codegen loops.
        database._executor._vectorized.codegen_enabled = False
        return database

    @pytest.mark.parametrize(
        "sql",
        [
            "select * from orders where o_total > 3.0",
            "select * from orders where o_total <= 12.0",
            "select * from orders where o_c_id = 3",
            "select * from orders where o_status = 'OPEN'",
            "select * from orders where o_status != 'DONE'",
            "select * from orders where o_total is null",
            "select * from orders where o_c_id is not null",
        ],
    )
    def test_numpy_filters_match_python_kernels(self, sql):
        reference = make_database()
        reference._executor._vectorized.codegen_enabled = False
        database = self._database()
        assert database.execute_sql(sql).rows == reference.execute_sql(sql).rows

    def test_boxed_column_counts_untyped_reason(self):
        database = self._database()
        database.table("orders").set_storage_mode("boxed")
        rows = database.execute_sql(
            "select * from orders where o_total > 3.0"
        ).rows
        assert rows  # python kernel still answered
        reasons = database.execution_stats()["vectorized"]["fallback_reasons"]
        assert reasons.get("untyped_column", 0) >= 1

    def test_parameter_slots_read_current_value(self):
        database = self._database()
        statement = database.prepare("select * from orders where o_total > ?")
        low = statement.execute((3.0,)).rows
        high = statement.execute((12.0,)).rows
        assert len(high) < len(low)
        assert all(row["o_total"] > 12.0 for row in high)
