"""Unit tests for the F-IR transformation rules (T1-T5, N1, N2)."""

import ast

import pytest

from repro.core.region_analysis import analyze_program
from repro.fir.builder import build_fold
from repro.fir.rules import (
    AggregationRule,
    DEFAULT_RULES,
    JoinRewriteRule,
    NestedJoinRule,
    PredicatePushRule,
    PrefetchFilterRule,
    PrefetchGroupRule,
    PrefetchNestedJoinRule,
    PrefetchRule,
    RuleContext,
    SqlTranslationRule,
)
from repro.workloads import tpcds
from repro.workloads.programs import M0_SOURCE, P0_SOURCE
from repro.workloads.wilos_programs import (
    PATTERN_C_SOURCE,
    PATTERN_D_SOURCE,
    PATTERN_E_SOURCE,
)

CONTEXT = RuleContext(runtime_parameter="rt")


def fold_for(source, registry=None, loop_index=0):
    info = analyze_program(source, registry=registry)
    return build_fold(info.cursor_loops()[loop_index], info.context)


def parses(source: str) -> bool:
    ast.parse(source)
    return True


class TestSqlTranslationRule:
    def test_copy_loop_becomes_single_query(self):
        source = """
def f(rt):
    rows = []
    for t in rt.execute_query("select * from role"):
        rows.append(t)
    return rows
"""
        rewrites = SqlTranslationRule().apply(fold_for(source), CONTEXT)
        assert len(rewrites) == 1
        assert rewrites[0].strategy == "sql-translation"
        assert "rows.extend(rt.execute_query" in rewrites[0].source
        assert parses(rewrites[0].source)

    def test_filtered_copy_loop_pushes_predicate(self):
        source = """
def f(rt):
    rows = []
    for t in rt.execute_query("select * from concrete_task"):
        if t["points"] > 10:
            rows.append(t)
    return rows
"""
        rewrites = SqlTranslationRule().apply(fold_for(source), CONTEXT)
        assert len(rewrites) == 1
        assert rewrites[0].strategy == "sql-filter"
        assert "where points > 10" in rewrites[0].source

    def test_does_not_apply_to_transforming_loops(self):
        source = """
def f(rt):
    rows = []
    for t in rt.execute_query("select * from role"):
        rows.append(t["name"])
    return rows
"""
        assert SqlTranslationRule().apply(fold_for(source), CONTEXT) == []


class TestAggregationRule:
    def test_single_sum_replaces_loop(self):
        source = """
def f(rt):
    total = 0
    for t in rt.execute_query("select * from iteration"):
        total = total + t["points"]
    return total
"""
        rewrites = AggregationRule().apply(fold_for(source), CONTEXT)
        assert any(r.strategy == "sql-aggregate" for r in rewrites)
        chosen = next(r for r in rewrites if r.strategy == "sql-aggregate")
        assert "sum(points)" in chosen.source
        assert parses(chosen.source)

    def test_count_uses_count_star(self, registry):
        rewrites = AggregationRule().apply(fold_for(PATTERN_D_SOURCE), CONTEXT)
        chosen = next(r for r in rewrites if r.strategy == "sql-aggregate")
        assert "count(*)" in chosen.source
        assert "activity_id" in chosen.source  # parameter retained
        assert "(activity_id,)" in chosen.source

    def test_dependent_aggregations_only_get_extra_query_variant(self):
        rewrites = AggregationRule().apply(fold_for(M0_SOURCE), CONTEXT)
        strategies = {r.strategy for r in rewrites}
        assert strategies == {"sql-aggregate-extra"}
        extra = rewrites[0]
        # The original loop is preserved alongside the extra query.
        assert "for t in" in extra.source and "sum(sale_amt)" in extra.source

    def test_max_aggregation(self):
        source = """
def f(rt):
    best = 0
    for t in rt.execute_query("select * from iteration"):
        best = max(best, t["points"])
    return best
"""
        rewrites = AggregationRule().apply(fold_for(source), CONTEXT)
        assert any("max(points)" in r.source for r in rewrites)


class TestJoinAndPrefetchRules:
    def test_p0_join_rewrite(self, registry):
        fold = fold_for(P0_SOURCE, registry)
        rewrites = JoinRewriteRule().apply(fold, CONTEXT)
        assert len(rewrites) == 1
        source = rewrites[0].source
        assert rewrites[0].strategy == "sql-join"
        assert "join customer" in source
        assert "o_customer_sk = customer.c_customer_sk" in source
        assert parses(source)
        # Accesses are redirected to the join-result row.
        assert "orders.o_id" in source and "customer.c_birth_year" in source

    def test_p0_prefetch_rewrite(self, registry):
        fold = fold_for(P0_SOURCE, registry)
        rewrites = PrefetchRule().apply(fold, CONTEXT)
        assert len(rewrites) == 1
        source = rewrites[0].source
        assert rewrites[0].strategy == "prefetch"
        assert "rt.prefetch('customer', 'c_customer_sk'" in source
        assert "rt.lookup(" in source
        assert parses(source)

    def test_rules_do_not_apply_without_lookups(self):
        source = """
def f(rt):
    total = 0
    for t in rt.execute_query("select * from iteration"):
        total = total + t["points"]
    return total
"""
        fold = fold_for(source)
        assert JoinRewriteRule().apply(fold, CONTEXT) == []
        assert PrefetchRule().apply(fold, CONTEXT) == []

    def test_nested_join_rules(self):
        fold = fold_for(PATTERN_C_SOURCE)
        join = NestedJoinRule().apply(fold, CONTEXT)
        prefetch = PrefetchNestedJoinRule().apply(fold, CONTEXT)
        assert len(join) == 1 and len(prefetch) == 1
        assert "join role" in join[0].source
        assert "prefetch_group('role', 'role_id'" in prefetch[0].source
        assert parses(join[0].source) and parses(prefetch[0].source)


class TestFilteredLoopRules:
    FILTER_SOURCE = """
def f(rt, key):
    out = []
    for t in rt.execute_query("select * from concrete_task"):
        if t["activity_id"] == key:
            out.append((t["task_id"], t["points"]))
    return out
"""

    def test_predicate_push_produces_parameterised_query(self):
        fold = fold_for(self.FILTER_SOURCE)
        rewrites = PredicatePushRule().apply(fold, CONTEXT)
        assert len(rewrites) == 1
        source = rewrites[0].source
        assert rewrites[0].strategy == "sql-filter"
        assert "where activity_id = ?" in source
        assert "(key,)" in source
        assert parses(source)

    def test_prefetch_filter_produces_grouped_lookup(self):
        fold = fold_for(self.FILTER_SOURCE)
        rewrites = PrefetchFilterRule().apply(fold, CONTEXT)
        assert len(rewrites) == 1
        source = rewrites[0].source
        assert "prefetch_group('concrete_task', 'activity_id'" in source
        assert "lookup_group(key" in source
        assert parses(source)

    def test_prefetch_group_rule_on_parameterised_loop(self):
        fold = fold_for(PATTERN_E_SOURCE)
        rewrites = PrefetchGroupRule().apply(fold, CONTEXT)
        assert len(rewrites) == 1
        source = rewrites[0].source
        assert "prefetch_group('breakdown_element', 'parent_id'" in source
        # The recursive call is preserved verbatim.
        assert "collect_descendants(rt," in source
        assert parses(source)

    def test_rules_skip_untranslatable_guards(self):
        source = """
def f(rt):
    out = []
    for t in rt.execute_query("select * from concrete_task"):
        if complex_check(t):
            out.append(t)
    return out
"""
        fold = fold_for(source)
        assert PredicatePushRule().apply(fold, CONTEXT) == []
        assert PrefetchFilterRule().apply(fold, CONTEXT) == []


class TestDefaultRuleSet:
    def test_every_rewrite_parses(self, registry):
        sources = [
            (P0_SOURCE, registry),
            (M0_SOURCE, None),
            (PATTERN_C_SOURCE, None),
            (PATTERN_D_SOURCE, None),
            (PATTERN_E_SOURCE, None),
        ]
        total = 0
        for source, reg in sources:
            fold = fold_for(source, reg)
            for rule in DEFAULT_RULES:
                for rewrite in rule.apply(fold, CONTEXT):
                    assert parses(rewrite.source)
                    assert rewrite.strategy
                    assert rewrite.rule
                    total += 1
        assert total >= 8
