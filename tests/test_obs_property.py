"""Span-accounting property tests.

The tracing invariant: for every statement executed through a connection,
the recorded :class:`~repro.obs.trace.QueryTrace` root span equals the
virtual latency the statement was charged, and its child spans partition
the root without overlapping.  Checked across all three execution tiers
(vectorized / compiled / interpreted), sharded and unsharded databases,
and the synchronous and asynchronous client paths — plus the WAL
group-commit, MVCC conflict, admission-queue, and fault-retry shapes that
add their own spans.  EXPLAIN ANALYZE actual row counts are also checked
to match executed result sizes exactly in every configuration.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Engine
from repro.db.database import Database
from repro.db.mvcc import SerializationError
from repro.db.schema import Column, ColumnType
from repro.net.faults import FaultError

MODES = ("vectorized", "compiled", "interpreted")
SHARD_COUNTS = (0, 4)


def build_database(mode: str, shards: int) -> Database:
    database = Database(execution_mode=mode)
    database.create_table(
        "orders",
        [
            Column("o_id", ColumnType.INT),
            Column("o_c_id", ColumnType.INT),
            Column("o_total", ColumnType.INT),
        ],
        primary_key="o_id",
    )
    database.create_table(
        "customers",
        [
            Column("c_id", ColumnType.INT),
            Column("c_tier", ColumnType.INT),
        ],
        primary_key="c_id",
    )
    database.insert(
        "orders",
        [
            {"o_id": i, "o_c_id": i % 10, "o_total": (i * 13) % 97}
            for i in range(120)
        ],
    )
    database.insert(
        "customers", [{"c_id": i, "c_tier": i % 3} for i in range(10)]
    )
    if shards:
        database.shard_table("orders", "o_c_id", shards)
        database.shard_table("customers", "c_id", shards)
    database.analyze()
    return database


def make_engine(
    mode: str = "vectorized",
    shards: int = 0,
    network: str = "slow-remote",
    **knobs,
) -> Engine:
    builder = (
        Engine.builder()
        .database(build_database(mode, shards))
        .network(network)
        .tracing()
    )
    if knobs.get("wal"):
        flush_seconds, group_window = knobs["wal"]
        builder.wal(flush_seconds=flush_seconds, group_window=group_window)
    if knobs.get("mvcc"):
        builder.mvcc()
    if knobs.get("admission"):
        builder.admission(knobs["admission"])
    if knobs.get("fault_rate"):
        builder.fault_rate(knobs["fault_rate"], seed=knobs.get("seed", 0))
    return builder.build()


def assert_one_exact_trace(engine, connection, run):
    """Run one exchange; its single new trace must equal the charged time."""
    recorded_before = engine.tracer.traces_recorded
    clock_before = connection.clock.now
    run()
    charged = connection.clock.now - clock_before
    assert engine.tracer.traces_recorded == recorded_before + 1
    trace = engine.tracer.traces[-1]
    trace.check_accounting()
    assert trace.duration == pytest.approx(charged, abs=1e-12)
    return trace


# -- tiers x sharding, synchronous client -------------------------------------


class TestSyncSpanAccounting:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("mode", MODES)
    def test_every_trace_partitions_its_charged_latency(self, mode, shards):
        engine = make_engine(mode, shards)
        connection = engine.connect()
        prepared = connection.prepare(
            "select * from orders where o_c_id = ?"
        )
        exchanges = [
            lambda: connection.execute_query(
                "select * from orders where o_total > 50"
            ),
            lambda: connection.execute_prepared(prepared, (3,)),
            lambda: connection.execute_prepared(prepared, (7,)),
            lambda: connection.execute_query(
                "select o_c_id, count(*) from orders group by o_c_id"
            ),
            lambda: connection.execute_update(
                "update orders set o_total = 1 where o_id = 3"
            ),
        ]
        for run in exchanges:
            assert_one_exact_trace(engine, connection, run)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("mode", MODES)
    def test_scan_filter_reports_its_tier(self, mode, shards):
        engine = make_engine(mode, shards)
        connection = engine.connect()
        connection.execute_query("select * from orders where o_total > 50")
        execute = engine.tracer.traces[-1].find("execute")
        assert execute.attributes["tier"] == mode
        route = engine.tracer.traces[-1].find("route")
        if shards:
            assert route.attributes["kind"] == "scatter"
            assert route.attributes["shards"] == tuple(range(shards))
        else:
            assert route is None

    def test_point_lookup_fast_path_reports_its_tier(self):
        engine = make_engine("vectorized", shards=0)
        connection = engine.connect()
        statement = connection.prepare("select * from orders where o_id = ?")
        assert_one_exact_trace(
            engine,
            connection,
            lambda: connection.execute_prepared(statement, (5,)),
        )
        execute = engine.tracer.traces[-1].find("execute")
        assert execute.attributes["tier"] == "point-lookup"

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("mode", MODES)
    def test_explain_analyze_actuals_are_exact(self, mode, shards):
        engine = make_engine(mode, shards, network="fast-local")
        database = engine.database
        for sql in (
            "select * from orders where o_total > 50",
            "select o.o_id, c.c_tier from orders o "
            "join customers c on o.o_c_id = c.c_id",
        ):
            expected = len(database.execute_sql(sql).rows)
            result = database.explain_analyze(sql)
            assert result.root.actual_rows == expected


# -- subsystem span shapes -----------------------------------------------------


class TestSubsystemSpans:
    def test_wal_flush_and_group_commit_ride_along(self):
        engine = make_engine(
            "vectorized", network="fast-local", wal=(0.002, 0.05)
        )
        connection = engine.connect()

        def transact():
            connection.begin()
            connection.execute_update(
                "update orders set o_total = 9 where o_id = 1"
            )
            assert_one_exact_trace(engine, connection, connection.commit)
            return engine.tracer.traces[-1]

        first = transact()
        flush = first.find("wal_flush")
        assert flush.duration == pytest.approx(0.002)
        assert flush.attributes["group_commit_ride_along"] is False
        # A second commit inside the group window piggybacks for free.
        second = transact()
        ride_along = second.find("wal_flush")
        assert ride_along.duration == 0.0
        assert ride_along.attributes["group_commit_ride_along"] is True

    def test_mvcc_conflict_traces_the_failed_commit(self):
        engine = make_engine("vectorized", network="fast-local", mvcc=True)
        winner = engine.connect()
        loser = engine.connect()
        winner.begin()
        winner.execute_update("update orders set o_total = 5 where o_id = 1")
        loser.begin()
        loser.execute_update("update orders set o_total = 6 where o_id = 1")
        winner.commit()
        with pytest.raises(SerializationError):
            loser.commit()
        failed = engine.tracer.traces[-1]
        assert failed.kind == "commit"
        assert failed.error is not None
        assert failed.find("mvcc_conflict") is not None
        assert engine.tracer.errors_recorded == 1

    def test_fault_retries_stay_inside_the_accounted_root(self):
        engine = make_engine(
            "vectorized", network="slow-remote", fault_rate=0.3, seed=3
        )
        connection = engine.connect()
        saw_retried_success = False
        for key in range(12):
            recorded_before = engine.tracer.traces_recorded
            clock_before = connection.clock.now
            try:
                connection.execute_query(
                    f"select * from orders where o_c_id = {key % 10}"
                )
            except FaultError:
                # Retry budget exhausted: the error trace still closes with
                # the virtual time the failed exchange burned.
                assert engine.tracer.traces_recorded == recorded_before + 1
                failed = engine.tracer.traces[-1]
                assert failed.error is not None
                assert failed.duration > 0.0
                continue
            charged = connection.clock.now - clock_before
            trace = engine.tracer.traces[-1]
            trace.check_accounting()
            assert trace.duration == pytest.approx(charged, abs=1e-12)
            if trace.find("retry_backoff") is not None:
                assert trace.find("fault") is not None
                saw_retried_success = True
        assert saw_retried_success, (
            "fault_rate=0.3 over 12 queries must produce at least one "
            "retried-then-successful exchange"
        )

    def test_admission_wait_is_charged_and_traced(self):
        engine = make_engine("vectorized", admission=1)
        aengine = engine.aio()

        async def client(key):
            connection = aengine.connect()
            return await connection.execute(
                "select * from orders where o_c_id = ?", (key,)
            )

        async def main():
            return await asyncio.gather(*[client(k) for k in range(4)])

        results = asyncio.run(main())
        assert all(result.rows for result in results)
        waits = [
            trace.find("admission_wait")
            for trace in engine.tracer.traces
            if trace.find("admission_wait") is not None
        ]
        # One request runs immediately; the queued ones carry wait spans.
        assert len(waits) >= 2
        assert all(wait.duration > 0.0 for wait in waits)
        for trace in engine.tracer.traces:
            trace.check_accounting()


# -- asynchronous client -------------------------------------------------------


class TestAsyncSpanAccounting:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("mode", MODES)
    def test_sequential_async_traces_equal_charged_latency(self, mode, shards):
        engine = make_engine(mode, shards)
        aengine = engine.aio()

        async def main():
            connection = aengine.connect()
            clock = connection.raw.clock
            statements = [
                ("select * from orders where o_total > 50", ()),
                ("select * from orders where o_c_id = ?", (3,)),
                ("select o_c_id, count(*) from orders group by o_c_id", ()),
            ]
            for sql, params in statements:
                recorded_before = engine.tracer.traces_recorded
                clock_before = clock.now
                await connection.execute(sql, params)
                charged = clock.now - clock_before
                assert engine.tracer.traces_recorded == recorded_before + 1
                trace = engine.tracer.traces[-1]
                trace.check_accounting()
                assert trace.duration == pytest.approx(charged, abs=1e-12)

        asyncio.run(main())

    def test_concurrent_async_traces_stay_accounted(self):
        engine = make_engine("vectorized", shards=4)
        aengine = engine.aio()

        async def client(key):
            connection = aengine.connect()
            return await connection.execute(
                "select * from orders where o_c_id = ?", (key,)
            )

        async def main():
            return await asyncio.gather(*[client(k) for k in range(6)])

        asyncio.run(main())
        assert engine.tracer.traces_recorded == 6
        total_charged = aengine.elapsed
        for trace in engine.tracer.traces:
            trace.check_accounting()
            # Overlapping requests never charge more than their own root.
            assert trace.duration <= total_charged + 1e-12

    def test_async_pipeline_flush_traces_the_batch(self):
        engine = make_engine("vectorized")
        aengine = engine.aio()

        async def main():
            connection = aengine.connect()
            clock = connection.raw.clock
            async with connection.pipeline() as pipeline:
                pipeline.execute("select * from orders where o_c_id = 1")
                pipeline.execute("select * from orders where o_c_id = 2")
                clock_before = clock.now
            charged = clock.now - clock_before
            trace = engine.tracer.traces[-1]
            assert trace.kind == "pipeline"
            trace.check_accounting()
            assert trace.duration == pytest.approx(charged, abs=1e-12)
            execute = trace.find("execute")
            assert len(execute.children) == 2

        asyncio.run(main())


# -- randomized workloads ------------------------------------------------------


operation_keys = st.lists(
    st.tuples(st.sampled_from(["read", "point", "write"]),
              st.integers(min_value=0, max_value=9)),
    min_size=1,
    max_size=12,
)


class TestRandomizedWorkloads:
    @settings(max_examples=25, deadline=None)
    @given(operations=operation_keys, shards=st.sampled_from(SHARD_COUNTS))
    def test_arbitrary_sync_workloads_hold_the_invariant(
        self, operations, shards
    ):
        engine = make_engine("vectorized", shards)
        connection = engine.connect()
        read = connection.prepare("select * from orders where o_c_id = ?")
        point = connection.prepare("select * from orders where o_id = ?")
        write = connection.prepare(
            "update orders set o_total = 0 where o_c_id = ?"
        )
        for kind, key in operations:
            if kind == "read":
                run = lambda: connection.execute_prepared(read, (key,))
            elif kind == "point":
                run = lambda: connection.execute_prepared(point, (key,))
            else:
                run = lambda: connection.execute_update_prepared(
                    write, (key,)
                )
            assert_one_exact_trace(engine, connection, run)
        assert engine.tracer.traces_recorded == len(operations)
