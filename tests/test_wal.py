"""Write-ahead logging and crash recovery.

The centerpiece is the crash-at-every-prefix property: one scripted
workload runs with the WAL enabled while every committed state is
snapshotted, then the log is "crashed" (truncated) at *every* prefix point
and recovered — recovery must yield exactly the most recent committed
state, never a partial transaction, on sharded and unsharded storage alike.
"""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.db.schema import Column, ColumnType
from repro.db.sharding import ShardedTable
from repro.db.wal import (
    CommitRecord,
    CreateTableRecord,
    InsertRecord,
    ShardTableRecord,
    UpdateRecord,
    WalError,
    WriteAheadLog,
)

PEOPLE_COLUMNS = [
    Column("person_id", ColumnType.INT),
    Column("name", ColumnType.STRING, width=16),
    Column("city", ColumnType.STRING, width=16),
]

CITIES = ["pune", "mumbai", "delhi", "goa"]


def snapshot(database: Database) -> dict:
    """Deep copy of every table's rows, in storage order."""
    return {
        name: [dict(row) for row in table.rows]
        for name, table in database.tables.items()
    }


def run_workload(database: Database, *, sharded: bool) -> list[tuple[int, dict]]:
    """A scripted mixed workload; returns (log length, snapshot) at every
    committed point, starting with the empty state at length 0."""
    commits = [(0, snapshot(database))]

    def committed() -> None:
        commits.append((len(database.wal), snapshot(database)))

    database.create_table("people", PEOPLE_COLUMNS, primary_key="person_id")
    committed()
    database.insert(
        "people",
        [
            {"person_id": i, "name": f"p{i}", "city": CITIES[i % 4]}
            for i in range(8)
        ],
    )
    committed()
    database.update_table(
        "people",
        lambda row: row["person_id"] % 2 == 0,
        {"name": lambda row: row["name"].upper()},
    )
    committed()
    if sharded:
        database.shard_table("people", "city", 3)
        committed()
    # An explicit multi-write transaction, committed.
    with database.begin():
        database.insert(
            "people",
            [
                {"person_id": 100, "name": "new", "city": "pune"},
                {"person_id": 101, "name": "newer", "city": "goa"},
            ],
        )
        database.update_table(
            "people",
            lambda row: row["person_id"] >= 100,
            {"city": "delhi"},  # shard-key move when sharded
        )
    committed()
    # An aborted transaction: its records hit the log but recovery (and the
    # live database) must never see its effects.
    txn = database.begin()
    database.insert(
        "people", [{"person_id": 200, "name": "ghost", "city": "pune"}]
    )
    database.update_table("people", lambda row: True, {"city": "nowhere"})
    txn.rollback()
    # A final autocommit write after the rollback.
    database.update_table(
        "people", lambda row: row["person_id"] == 0, {"city": "goa"}
    )
    committed()
    return commits


def assert_partitions_consistent(table: ShardedTable) -> None:
    """Every row sits in (exactly) the partition its shard key hashes to."""
    seen = 0
    for index, shard in enumerate(table.shards):
        for row in shard.rows:
            assert table.shard_index(row[table.shard_key]) == index
            seen += 1
    assert seen == len(table.rows)


class TestCrashAtEveryPrefix:
    @pytest.mark.parametrize("mvcc", [False, True], ids=["legacy", "mvcc"])
    @pytest.mark.parametrize("sharded", [False, True], ids=["plain", "sharded"])
    def test_recovery_yields_exactly_the_committed_prefix(self, sharded, mvcc):
        """The property holds identically under MVCC: deferred-apply write
        sets log contiguously at COMMIT (aborted transactions log only an
        AbortRecord), so every prefix still recovers to exactly the last
        committed state."""
        database = Database(wal=True, mvcc=mvcc)
        commits = run_workload(database, sharded=sharded)
        log = database.wal
        assert commits[-1][0] == len(log) or commits[-1][0] < len(log)
        for crash_point in range(len(log) + 1):
            expected = next(
                state
                for length, state in reversed(commits)
                if length <= crash_point
            )
            recovered = Database.recover(log.prefix(crash_point), mvcc=mvcc)
            assert snapshot(recovered) == expected, (
                f"crash at record {crash_point}: recovery diverged from the "
                f"last committed state"
            )
            table = recovered.tables.get("people")
            if isinstance(table, ShardedTable):
                assert_partitions_consistent(table)

    def test_mvcc_and_legacy_recovery_agree_logically(self):
        """The same workload logged under MVCC (deferred-apply, records
        grouped at COMMIT) and under the legacy single-writer path recovers
        to the same state."""
        legacy = Database(wal=True)
        run_workload(legacy, sharded=False)
        versioned = Database(wal=True, mvcc=True)
        run_workload(versioned, sharded=False)
        recovered_legacy = Database.recover(legacy.wal)
        recovered_versioned = Database.recover(versioned.wal, mvcc=True)
        assert snapshot(recovered_versioned) == snapshot(recovered_legacy)
        assert recovered_versioned.mvcc_enabled

    def test_sharded_and_unsharded_recovery_agree_logically(self):
        plain = Database(wal=True)
        run_workload(plain, sharded=False)
        sharded = Database(wal=True)
        run_workload(sharded, sharded=True)

        recovered_plain = Database.recover(plain.wal)
        recovered_sharded = Database.recover(sharded.wal)
        rows_plain = sorted(
            (dict(r) for r in recovered_plain.table("people").rows),
            key=lambda r: r["person_id"],
        )
        rows_sharded = sorted(
            (dict(r) for r in recovered_sharded.table("people").rows),
            key=lambda r: r["person_id"],
        )
        assert rows_plain == rows_sharded
        assert isinstance(recovered_sharded.table("people"), ShardedTable)
        assert not isinstance(recovered_plain.table("people"), ShardedTable)


class TestRecoveredDatabase:
    def test_recovered_database_matches_live_state_and_keeps_logging(self):
        database = Database(wal=True)
        run_workload(database, sharded=True)
        recovered = Database.recover(database.wal)
        assert snapshot(recovered) == snapshot(database)
        # The primary-key index survives replay.
        assert recovered.table("people").lookup_pk(100)["city"] == "delhi"
        # The recovered database carries a live log seeded with the
        # committed history, so it can itself be crashed and recovered.
        assert recovered.wal is not None
        recovered.insert(
            "people", [{"person_id": 300, "name": "late", "city": "goa"}]
        )
        twice = Database.recover(recovered.wal)
        assert snapshot(twice) == snapshot(recovered)

    def test_recovered_txn_ids_do_not_collide_with_history(self):
        database = Database(wal=True)
        run_workload(database, sharded=False)
        recovered = Database.recover(database.wal)
        assert recovered._next_txn_id > database.wal.max_txn_id()

    @pytest.mark.parametrize(
        "mode", ["interpreted", "compiled", "vectorized"]
    )
    def test_shard_key_update_rehomes_identically_on_every_tier(self, mode):
        """WAL replay of a shard-key UPDATE must rehome rows exactly like
        the live path, on every executor tier."""
        live = Database(wal=True, execution_mode=mode)
        live.create_table("people", PEOPLE_COLUMNS, primary_key="person_id")
        live.insert(
            "people",
            [
                {"person_id": i, "name": f"p{i}", "city": CITIES[i % 4]}
                for i in range(12)
            ],
        )
        live.shard_table("people", "city", 4)
        # The shard-key move: every pune row rehomes to goa's shard.
        live.execute_update_sql("update people set city = 'goa' where city = 'pune'")

        recovered = Database.recover(live.wal, execution_mode=mode)
        live_table = live.table("people")
        recovered_table = recovered.table("people")
        assert isinstance(recovered_table, ShardedTable)
        assert_partitions_consistent(recovered_table)
        # Partition-for-partition identical placement, not just identical
        # aggregate contents.
        for live_shard, recovered_shard in zip(
            live_table.shards, recovered_table.shards
        ):
            assert [dict(r) for r in live_shard.rows] == [
                dict(r) for r in recovered_shard.rows
            ]
        # And the tier answers queries identically over the recovered state.
        sql = "select * from people where city = 'goa'"
        assert (
            live.execute_sql(sql).rows == recovered.execute_sql(sql).rows
        )
        assert recovered.execution_mode == mode


class TestCheckpoint:
    def test_enable_wal_on_populated_database_is_self_contained(self):
        database = Database()
        database.create_table(
            "people", PEOPLE_COLUMNS, primary_key="person_id"
        )
        database.insert(
            "people",
            [
                {"person_id": i, "name": f"p{i}", "city": CITIES[i % 4]}
                for i in range(6)
            ],
        )
        database.shard_table("people", "city", 2)
        log = database.enable_wal()
        # The checkpoint alone reproduces the pre-enable state.
        recovered = Database.recover(log)
        assert snapshot(recovered) == snapshot(database)
        assert isinstance(recovered.table("people"), ShardedTable)
        # Post-enable writes append to the same log.
        database.insert(
            "people", [{"person_id": 50, "name": "x", "city": "pune"}]
        )
        assert snapshot(Database.recover(log)) == snapshot(database)

    def test_enable_wal_on_existing_log_uses_fresh_txn_ids(self):
        """Attaching a non-empty log must allocate checkpoint txn ids past
        the log's history: a reused id already has a commit record, so a
        crash before the *new* commit record would still replay the
        checkpoint, resurrecting uncommitted state."""
        first = Database(wal=True)
        first.create_table(
            "people", PEOPLE_COLUMNS, primary_key="person_id"
        )
        first.insert(
            "people", [{"person_id": 1, "name": "a", "city": "pune"}]
        )
        log = first.wal
        history_max = log.max_txn_id()
        history_length = len(log)

        second = Database()
        second.create_table(
            "extra", [Column("k", ColumnType.INT)], primary_key="k"
        )
        second.insert("extra", [{"k": 7}])
        second.enable_wal(log)
        checkpoint_ids = {
            record.txn_id for record in log.records[history_length:]
        }
        assert min(checkpoint_ids) > history_max
        # The full log recovers both histories...
        assert "extra" in Database.recover(log).tables
        # ...but a crash just before the checkpoint's commit record must
        # discard the whole checkpoint, not resurrect it.
        crashed = log.prefix(len(log) - 1)
        recovered = Database.recover(crashed)
        assert "extra" not in recovered.tables
        assert snapshot(recovered) == snapshot(first)

    def test_empty_log_instance_still_enables_durability(self):
        """An empty WriteAheadLog is falsy (it defines __len__); passing
        one must attach it, not silently leave durability off."""
        log = WriteAheadLog()
        database = Database(wal=log)
        assert database.wal is log
        database.create_table("t", [Column("a", ColumnType.INT)])
        assert len(log) > 0

    def test_empty_log_instance_respected_by_engine_builder(self):
        from repro.api.engine import Engine

        log = WriteAheadLog()
        engine = Engine.builder().wal(log).build()
        assert engine.database.wal is log

    def test_enable_wal_twice_raises(self):
        database = Database(wal=True)
        with pytest.raises(WalError, match="already enabled"):
            database.enable_wal()

    def test_enable_wal_inside_transaction_raises(self):
        from repro.db.database import TransactionError

        database = Database()
        database.create_table("t", [Column("a", ColumnType.INT)])
        with database.begin():
            with pytest.raises(TransactionError):
                database.enable_wal()


class TestLogMechanics:
    def test_records_appended_before_apply(self):
        """The log-before-apply rule: a failed statement leaves its record
        in the log uncommitted, so recovery ignores it."""
        database = Database(wal=True)
        database.create_table(
            "people", PEOPLE_COLUMNS, primary_key="person_id"
        )
        database.insert(
            "people", [{"person_id": 1, "name": "a", "city": "pune"}]
        )
        length_before = len(database.wal)

        def exploding(row):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            database.update_table(
                "people", lambda row: True, {"name": exploding}
            )
        # plan_update failed before logging or applying anything.
        assert len(database.wal) == length_before
        recovered = Database.recover(database.wal)
        assert snapshot(recovered) == snapshot(database)

    def test_prefix_bounds_checked(self):
        log = WriteAheadLog()
        with pytest.raises(WalError, match="out of range"):
            log.prefix(1)
        with pytest.raises(WalError, match="out of range"):
            log.prefix(-1)

    def test_stats_count_record_types(self):
        database = Database(wal=True)
        database.create_table(
            "people", PEOPLE_COLUMNS, primary_key="person_id"
        )
        database.insert(
            "people",
            [{"person_id": i, "name": "n", "city": "pune"} for i in range(3)],
        )
        database.update_table("people", lambda row: True, {"city": "goa"})
        stats = database.wal.stats
        assert stats.ddl == 1
        assert stats.inserts == 1
        assert stats.updates == 1
        assert stats.commits == 3
        assert stats.rows_logged == 6  # 3 inserted + 3 updated
        kinds = [type(record) for record in database.wal]
        assert kinds == [
            CreateTableRecord,
            CommitRecord,
            InsertRecord,
            CommitRecord,
            UpdateRecord,
            CommitRecord,
        ]

    def test_group_commit_window_batches_flushes(self):
        log = WriteAheadLog(flush_seconds=0.05, group_window=2.0)
        # The first commit pays the flush; commits landing within the
        # window of the last *paid* flush ride along for free.
        assert log.commit_flush(0.0) == 0.05
        assert log.commit_flush(1.0) == 0.0
        assert log.commit_flush(1.9) == 0.0
        assert log.commit_flush(4.0) == 0.05
        assert log.stats.group_commits == 2

    def test_flushless_log_never_charges_commits(self):
        log = WriteAheadLog()
        assert log.commit_flush(10.0) == 0.0
        assert log.stats.group_commits == 0

    def test_shard_ddl_logged_and_replayed(self):
        database = Database(wal=True)
        database.create_table(
            "people", PEOPLE_COLUMNS, primary_key="person_id"
        )
        database.shard_table("people", "city", 5)
        assert any(
            isinstance(record, ShardTableRecord) for record in database.wal
        )
        recovered = Database.recover(database.wal)
        table = recovered.table("people")
        assert isinstance(table, ShardedTable)
        assert table.shard_count == 5 and table.shard_key == "city"
