"""Checks of specific claims the paper makes in Section VIII.

These tests pin the qualitative statements of the evaluation narrative (not
just the figures) to the reproduction, using the analytical cost-model path
so they are fast and deterministic.
"""

import pytest

from repro.core.cost_model import CostModel, CostParameters
from repro.core.optimizer import CobraOptimizer
from repro.experiments.figure13 import build_stats_only_database, estimate_point
from repro.net.network import FAST_LOCAL, SLOW_REMOTE
from repro.workloads import tpcds
from repro.workloads.programs import P0_SOURCE, P1_SOURCE, P2_SOURCE


class TestExperiment1Claims:
    """"At lower number of Order rows, COBRA chose the program using SQL query
    API (P1) ... as the number of Order rows approaches the number of Customer
    rows, COBRA switched to program P2."""

    def test_choice_switches_as_orders_approach_customers(self):
        choices = {}
        for orders in (100, 10_000, 100_000, 1_000_000):
            point = estimate_point(orders, 73_000, SLOW_REMOTE)
            choices[orders] = point.cobra_choice
        assert choices[100] == "SQL Query(P1)"
        assert choices[10_000] == "SQL Query(P1)"
        assert choices[1_000_000] == "Prefetching(P2)"

    def test_p2_time_flat_at_low_order_cardinality(self):
        """"The performance of prefetching (P2) does not vary much for lower
        cardinalities as the bulk of the time is spent on fetching the larger
        relation (Customer) data."""
        low = estimate_point(100, 73_000, SLOW_REMOTE).p2_seconds
        mid = estimate_point(10_000, 73_000, SLOW_REMOTE).p2_seconds
        assert mid == pytest.approx(low, rel=0.35)


class TestExperiment2Claims:
    """"the performance difference is much more significant in a slow remote
    network (3467s vs 6047s) than in a fast local network (12s vs 16s)."""

    def test_p1_p2_gap_shrinks_on_fast_network(self):
        slow = estimate_point(1_000_000, 73_000, SLOW_REMOTE)
        fast = estimate_point(1_000_000, 73_000, FAST_LOCAL)
        slow_gap = slow.p1_seconds - slow.p2_seconds
        fast_gap = fast.p1_seconds - fast.p2_seconds
        assert slow_gap > 1_000
        assert 0 < fast_gap < 60
        assert slow_gap > 100 * fast_gap

    def test_choice_is_p2_at_top_cardinality_on_both_networks(self):
        assert (
            estimate_point(1_000_000, 73_000, SLOW_REMOTE).cobra_choice
            == "Prefetching(P2)"
        )
        assert (
            estimate_point(1_000_000, 73_000, FAST_LOCAL).cobra_choice
            == "Prefetching(P2)"
        )


class TestExperiment3Claims:
    """"it is not necessary that P1 performs better at lower cardinalities,
    and P2 performs better at higher cardinalities."""

    def test_preference_is_reversed_relative_to_experiment_1(self):
        low_customers = estimate_point(10_000, 100, SLOW_REMOTE)
        high_customers = estimate_point(10_000, 100_000, SLOW_REMOTE)
        assert low_customers.cobra_choice == "Prefetching(P2)"
        assert high_customers.cobra_choice == "SQL Query(P1)"

    def test_cobra_always_reports_the_minimum_alternative(self):
        for customers in (10, 1_000, 100_000):
            point = estimate_point(10_000, customers, SLOW_REMOTE)
            best = min(point.p0_seconds, point.p1_seconds, point.p2_seconds)
            assert point.cobra_seconds == pytest.approx(best)


class TestCostModelNarrative:
    def test_cost_estimates_track_the_paper_magnitudes_at_full_scale(self):
        """Paper Figure 13a at 1M orders: P1 = 6047 s, P2 = 3467 s.  The
        reproduction should land in the same order of magnitude and preserve
        the ratio direction (P2 roughly 1.5-2x faster)."""
        point = estimate_point(1_000_000, 73_000, SLOW_REMOTE)
        assert 2_000 < point.p1_seconds < 12_000
        assert 1_500 < point.p2_seconds < 8_000
        ratio = point.p1_seconds / point.p2_seconds
        assert 1.2 < ratio < 2.5

    def test_optimizer_uses_database_statistics_not_defaults(self):
        """Doubling the Orders cardinality must change the estimated costs."""
        small = build_stats_only_database(100_000, 73_000)
        large = build_stats_only_database(200_000, 73_000)
        params = CostParameters.for_network(SLOW_REMOTE)
        small_cost = CobraOptimizer(
            small, params, registry=tpcds.build_registry()
        ).estimate_cost(P1_SOURCE)
        large_cost = CobraOptimizer(
            large, params, registry=tpcds.build_registry()
        ).estimate_cost(P1_SOURCE)
        assert large_cost > small_cost * 1.5

    def test_every_paper_program_variant_is_costable(self):
        database = build_stats_only_database(50_000, 73_000)
        params = CostParameters.for_network(SLOW_REMOTE)
        optimizer = CobraOptimizer(database, params, registry=tpcds.build_registry())
        costs = [
            optimizer.estimate_cost(source)
            for source in (P0_SOURCE, P1_SOURCE, P2_SOURCE)
        ]
        assert all(cost > 0 for cost in costs)
        # P0's iterative queries dominate on the slow network.
        assert costs[0] > costs[1] and costs[0] > costs[2]
