"""Parameter-slot prepared plans: compile once, bind values per execution.

The prepared-statement fast path used to cover only the point-lookup shape;
every other parameterized statement rebuilt its plan (``bind_parameters``)
and re-lowered the fresh expression trees on each call.  With slot
compilation the template is rewritten once (every ``?`` becomes a
:class:`repro.db.expressions.ParameterSlot` reading the statement's buffer)
and repeated executions perform **zero** parsing and zero expression
compilation.  These tests pin both the row-identical semantics and the
no-recompile property.
"""

from __future__ import annotations

import pytest

from repro.db.database import Database
from repro.db.expressions import BinaryOp, ColumnRef, Expression, ParameterSlot
from repro.db.schema import Column, ColumnType
from repro.db.sqlparser import (
    SQLSyntaxError,
    bind_parameter_slots,
    bind_parameters,
    parse_sql,
)


def make_database() -> Database:
    database = Database()
    database.create_table(
        "orders",
        [
            Column("o_id", ColumnType.INT),
            Column("o_c_id", ColumnType.INT),
            Column("o_total", ColumnType.FLOAT),
            Column("o_status", ColumnType.STRING, width=8),
        ],
        primary_key="o_id",
    )
    database.create_table(
        "customers",
        [
            Column("c_id", ColumnType.INT),
            Column("c_name", ColumnType.STRING, width=16),
        ],
        primary_key="c_id",
    )
    database.insert(
        "orders",
        [
            {
                "o_id": i,
                "o_c_id": i % 10,
                "o_total": float(i * 7 % 100),
                "o_status": "OPEN" if i % 3 else "DONE",
            }
            for i in range(200)
        ],
    )
    database.insert(
        "customers",
        [{"c_id": i, "c_name": f"customer-{i}"} for i in range(10)],
    )
    database.analyze()
    return database


#: Parameterized SELECT shapes well beyond the point-lookup fast path, with
#: parameter tuples to replay through each.
SHAPES = [
    ("select * from orders where o_total > ?", [(10.0,), (50.0,), (95.0,)]),
    (
        "select * from orders where o_total > ? and o_status = ?",
        [(10.0, "OPEN"), (40.0, "DONE")],
    ),
    (
        "select o_id, o_total * ? as scaled from orders where o_c_id = ?",
        [(2, 3), (10, 7)],
    ),
    (
        "select o_c_id, count(*) from orders where o_total >= ? group by o_c_id",
        [(0.0,), (60.0,)],
    ),
    (
        "select o.o_id, c.c_name from orders o join customers c "
        "on o.o_c_id = c.c_id where o.o_total > ?",
        [(80.0,), (97.0,)],
    ),
    (
        "select * from orders where o_total > ? order by o_total desc limit 5",
        [(20.0,), (90.0,)],
    ),
]


class TestSlotExecutionEquivalence:
    @pytest.mark.parametrize("sql,param_sets", SHAPES)
    def test_prepared_rows_match_literal_bound_plan(self, sql, param_sets):
        """Slot execution is row-identical to the unprepared (literal) path."""
        database = make_database()
        statement = database.prepare(sql)
        for params in param_sets:
            expected = database.execute_plan(
                bind_parameters(parse_sql(sql), params), sql=sql
            )
            actual = statement.execute(params)
            assert actual.rows == expected.rows

    @pytest.mark.parametrize("sql,param_sets", SHAPES)
    def test_interleaved_parameters_do_not_leak(self, sql, param_sets):
        """Re-binding must fully overwrite the previous execution's slots."""
        database = make_database()
        statement = database.prepare(sql)
        first = statement.execute(param_sets[0]).rows
        statement.execute(param_sets[-1])
        again = statement.execute(param_sets[0]).rows
        assert again == first

    def test_none_parameter_matches_literal_semantics(self):
        """A bound NULL compares like the interpreter's NULL (no match)."""
        database = make_database()
        statement = database.prepare("select * from orders where o_total > ?")
        assert statement.execute((None,)).rows == []

    def test_missing_parameter_raises(self):
        database = make_database()
        statement = database.prepare(
            "select * from orders where o_total > ? and o_status = ?"
        )
        with pytest.raises(SQLSyntaxError, match="missing value"):
            statement.execute((1.0,))

    def test_extra_parameters_ignored(self):
        database = make_database()
        statement = database.prepare("select * from orders where o_c_id = ?")
        rows = statement.execute((3, "ignored", 42)).rows
        assert rows and all(r["o_c_id"] == 3 for r in rows)


class TestNoRecompilePerExecution:
    def _count_compiles(self, database, statement, param_sets):
        """Expression.compile invocations during repeated executions."""
        counter = {"calls": 0}
        original = Expression.compile

        def counting(self, resolver=None):
            counter["calls"] += 1
            return original(self, resolver)

        Expression.compile = counting
        try:
            # Warm-up execution may lower the template once per operator.
            statement.execute(param_sets[0])
            warmup = counter["calls"]
            for params in param_sets:
                statement.execute(params)
            return warmup, counter["calls"] - warmup
        finally:
            Expression.compile = original

    @pytest.mark.parametrize("sql,param_sets", SHAPES)
    def test_steady_state_executions_compile_nothing(self, sql, param_sets):
        database = make_database()
        statement = database.prepare(sql)
        warmup, steady = self._count_compiles(database, statement, param_sets)
        assert steady == 0, (
            f"{sql!r} recompiled {steady} expressions after warm-up"
        )

    def test_update_compiles_once(self):
        database = make_database()
        statement = database.prepare(
            "update orders set o_total = o_total + ? where o_c_id = ?"
        )
        counter = {"calls": 0}
        original = Expression.compile

        def counting(self, resolver=None):
            counter["calls"] += 1
            return original(self, resolver)

        Expression.compile = counting
        try:
            statement.execute_update((1.0, 3))
            warmup = counter["calls"]
            for increment in range(5):
                statement.execute_update((float(increment), 3))
            assert counter["calls"] == warmup
        finally:
            Expression.compile = original

    def test_template_plan_object_is_stable(self):
        """The executed plan is the same object on every call (no rebuild)."""
        database = make_database()
        statement = database.prepare("select * from orders where o_total > ?")
        template = statement._exec_plan
        statement.execute((10.0,))
        statement.execute((90.0,))
        assert statement._exec_plan is template


class TestSlottedUpdates:
    def test_prepared_update_binds_per_execution(self):
        database = make_database()
        statement = database.prepare(
            "update orders set o_status = ? where o_id = ?"
        )
        assert statement.execute_update(("SHIPPED", 5)) == 1
        assert statement.execute_update(("SHIPPED", 6)) == 1
        rows = database.execute_sql(
            "select * from orders where o_status = 'SHIPPED'"
        ).rows
        assert sorted(r["o_id"] for r in rows) == [5, 6]

    def test_update_expression_reads_row_and_slot(self):
        database = make_database()
        before = {
            r["o_id"]: r["o_total"]
            for r in database.execute_sql("select * from orders").rows
        }
        statement = database.prepare(
            "update orders set o_total = o_total + ? where o_id = ?"
        )
        statement.execute_update((5.0, 7))
        after = database.execute_sql(
            "select * from orders where o_id = 7"
        ).rows[0]
        assert after["o_total"] == pytest.approx(before[7] + 5.0)

    def test_update_missing_parameter_raises(self):
        database = make_database()
        statement = database.prepare(
            "update orders set o_status = ? where o_id = ?"
        )
        with pytest.raises(SQLSyntaxError, match="missing value"):
            statement.execute_update(("X",))

    def test_simultaneous_assignment_semantics_preserved(self):
        database = make_database()
        database.create_table(
            "pairs",
            [Column("a", ColumnType.INT), Column("b", ColumnType.INT)],
        )
        database.insert("pairs", [{"a": 1, "b": 2}])
        statement = database.prepare("update pairs set a = b, b = a")
        statement.execute_update()
        row = database.execute_sql("select * from pairs").rows[0]
        assert (row["a"], row["b"]) == (2, 1)


class TestParameterSlotExpression:
    def test_slot_reads_current_buffer_value(self):
        slots = [None]
        slot = ParameterSlot(0, slots)
        compiled = slot.compile()
        slots[0] = 42
        assert compiled({}) == 42
        assert slot.evaluate({}) == 42
        slots[0] = "other"
        assert compiled({}) == "other"

    def test_slots_use_identity_equality(self):
        slots = [None]
        a = ParameterSlot(0, slots)
        b = ParameterSlot(0, slots)
        assert a != b
        assert a == a
        assert len({a, b}) == 2

    def test_bind_parameter_slots_rewrites_every_parameter(self):
        slots = [None, None]
        plan = bind_parameter_slots(
            parse_sql(
                "select * from orders where o_total > ? and o_status = ?"
            ),
            slots,
        )
        predicate = plan.predicate
        found = []

        def walk(expression):
            if isinstance(expression, ParameterSlot):
                found.append(expression)
            for attr in ("left", "right", "operand"):
                child = getattr(expression, attr, None)
                if isinstance(child, Expression):
                    walk(child)
            for child in getattr(expression, "operands", ()):
                walk(child)

        walk(predicate)
        assert [slot.index for slot in found] == [0, 1]
        assert all(slot.slots is slots for slot in found)

    def test_to_sql_renders_placeholder(self):
        assert ParameterSlot(0, [None]).to_sql() == "?"


class TestSlotInvalidationInteraction:
    def test_estimates_revalidate_after_analyze(self):
        database = make_database()
        statement = database.prepare("select * from orders where o_c_id = ?")
        statement.execute((1,))
        first = statement.estimates_computed
        database.analyze()
        statement.execute((1,))
        statement.estimate()
        assert statement.estimates_computed == first + 1

    def test_ddl_drops_slotted_statements(self):
        database = make_database()
        statement = database.prepare("select * from orders where o_c_id = ?")
        database.create_table("extra", [Column("x", ColumnType.INT)])
        fresh = database.prepare("select * from orders where o_c_id = ?")
        assert fresh is not statement
        assert fresh.execute((2,)).rows == [
            r for r in fresh.execute((2,)).rows
        ]

    def test_ddl_clears_executor_context_cache(self):
        """DDL drops the resolver-context closures keyed by table identity."""
        database = make_database()
        # Pin the compiled tier: the vectorized default serves this shape
        # from its own lowered-plan cache without touching context compiles.
        database._executor = type(database._executor)(
            database.tables, mode="compiled"
        )
        statement = database.prepare("select * from orders where o_total > ?")
        statement.execute((10.0,))
        assert database._executor._context_cache
        database.create_table("extra", [Column("x", ColumnType.INT)])
        assert database._executor._context_cache == {}

    def test_ddl_clears_vectorized_plan_cache(self):
        """DDL drops the vectorized tier's plan and pipeline caches too."""
        database = make_database()
        statement = database.prepare("select * from orders where o_total > ?")
        statement.execute((10.0,))
        vectorized = database._executor._vectorized
        assert vectorized is not None and vectorized._pipelines
        ordered = database.prepare(
            "select o_id from orders where o_total > ? order by o_id"
        )
        ordered.execute((10.0,))
        assert vectorized._ops
        database.create_table("extra", [Column("x", ColumnType.INT)])
        assert not vectorized._ops
        assert not vectorized._pipelines
        assert not vectorized._shapes

    def test_table_mutation_reflected_on_next_execution(self):
        database = make_database()
        statement = database.prepare("select * from orders where o_c_id = ?")
        before = len(statement.execute((4,)).rows)
        database.insert("orders", [{"o_id": 999, "o_c_id": 4, "o_total": 1.0}])
        assert len(statement.execute((4,)).rows) == before + 1
