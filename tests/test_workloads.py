"""Unit tests for the workload generators and the P0/P1/P2 programs."""

import pytest

from repro.net.network import FAST_LOCAL, SLOW_REMOTE
from repro.workloads import programs, tpcds
from repro.workloads.generator import DeterministicGenerator
from repro.workloads.wilos import (
    DEFAULT_SCALE,
    MAPPING_RATIO,
    WilosScale,
    build_wilos_database,
)
from repro.workloads.wilos_programs import all_fragments, build_patterns


class TestDeterministicGenerator:
    def test_same_seed_same_sequence(self):
        a = DeterministicGenerator(7)
        b = DeterministicGenerator(7)
        assert [a.next_int(0, 100) for _ in range(10)] == [
            b.next_int(0, 100) for _ in range(10)
        ]

    def test_different_seeds_differ(self):
        a = DeterministicGenerator(7)
        b = DeterministicGenerator(8)
        assert [a.next_int(0, 10**6) for _ in range(5)] != [
            b.next_int(0, 10**6) for _ in range(5)
        ]

    def test_int_range_respected(self):
        generator = DeterministicGenerator(3)
        values = [generator.next_int(5, 9) for _ in range(200)]
        assert min(values) >= 5 and max(values) <= 9
        assert set(values) == {5, 6, 7, 8, 9}

    def test_float_range(self):
        generator = DeterministicGenerator(3)
        values = [generator.next_float(1.0, 2.0) for _ in range(100)]
        assert all(1.0 <= v < 2.0 for v in values)

    def test_choice_and_errors(self):
        generator = DeterministicGenerator(3)
        assert generator.choice(["x"]) == "x"
        with pytest.raises(ValueError):
            generator.choice([])
        with pytest.raises(ValueError):
            generator.next_int(5, 4)

    def test_string_width(self):
        generator = DeterministicGenerator(3)
        assert len(generator.string("p", 12)) == 12

    def test_boolean_probability(self):
        generator = DeterministicGenerator(3)
        values = [generator.boolean(0.2) for _ in range(500)]
        fraction = sum(values) / len(values)
        assert 0.1 < fraction < 0.35


class TestTpcdsWorkload:
    def test_row_widths_match_spec(self, orders_database):
        assert orders_database.schema.table("orders").row_width == tpcds.ORDER_ROW_WIDTH
        assert (
            orders_database.schema.table("customer").row_width
            == tpcds.CUSTOMER_ROW_WIDTH
        )

    def test_cardinalities(self, orders_database):
        assert orders_database.row_count("orders") == 300
        assert orders_database.row_count("customer") == 60

    def test_foreign_keys_reference_existing_customers(self, orders_database):
        customers = {
            r["c_customer_sk"] for r in orders_database.table("customer").rows
        }
        assert all(
            r["o_customer_sk"] in customers
            for r in orders_database.table("orders").rows
        )

    def test_statistics_are_loaded(self, orders_database):
        stats = orders_database.statistics.table_stats("orders")
        assert stats.row_count == 300
        assert stats.distinct["o_id"] == 300

    def test_generation_is_deterministic(self):
        a = tpcds.build_orders_database(50, 10, seed=3)
        b = tpcds.build_orders_database(50, 10, seed=3)
        assert a.table("orders").rows == b.table("orders").rows

    def test_registry_maps_the_figure2_schema(self, registry):
        order = registry.entity("Order")
        assert order.table == "orders"
        relation = order.relation("customer")
        assert relation.target_key_column == "c_customer_sk"


class TestMotivatingExamplePrograms:
    def test_all_variants_compute_the_same_result(self, orders_runtime):
        results = {}
        for label, function in programs.VARIANTS.items():
            results[label] = orders_runtime.measure(function).result
        assert results["Hibernate(P0)"] == results["SQL Query(P1)"]
        assert results["Hibernate(P0)"] == results["Prefetching(P2)"]

    def test_p0_issues_many_queries_p1_one(self, orders_runtime):
        p0 = orders_runtime.measure(programs.p0_orm)
        p1 = orders_runtime.measure(programs.p1_sql_join)
        p2 = orders_runtime.measure(programs.p2_prefetch)
        assert p1.queries == 1
        assert p2.queries == 2
        assert p0.queries > 10

    def test_slow_network_penalises_p0(self, slow_orders_runtime):
        p0 = slow_orders_runtime.measure(programs.p0_orm)
        p1 = slow_orders_runtime.measure(programs.p1_sql_join)
        assert p0.elapsed_seconds > 5 * p1.elapsed_seconds

    def test_sources_parse(self):
        import ast

        for source in programs.VARIANT_SOURCES.values():
            ast.parse(source)
        ast.parse(programs.M0_SOURCE)


class TestWilosWorkload:
    def test_scale_derivation(self):
        scale = WilosScale.from_largest(10_000)
        assert scale.concrete_task == 10_000
        assert scale.activity == 10_000 // MAPPING_RATIO
        assert scale.role == 10_000 // MAPPING_RATIO**2

    def test_tables_populated(self, wilos_database):
        for table in (
            "role",
            "project",
            "participant",
            "activity",
            "iteration",
            "concrete_task",
            "breakdown_element",
            "descriptor",
            "process",
        ):
            assert wilos_database.row_count(table) > 0
        assert wilos_database.row_count("concrete_task") == 800

    def test_mapping_ratio_roughly_ten_to_one(self, wilos_database):
        tasks = wilos_database.row_count("concrete_task")
        activities = wilos_database.row_count("activity")
        assert tasks / activities == pytest.approx(MAPPING_RATIO, rel=0.2)

    def test_foreign_keys_valid(self, wilos_database):
        roles = {r["role_id"] for r in wilos_database.table("role").rows}
        assert all(
            r["role_id"] in roles
            for r in wilos_database.table("participant").rows
        )

    def test_breakdown_forest_parents_precede_children(self, wilos_database):
        for row in wilos_database.table("breakdown_element").rows:
            assert row["parent_id"] < row["element_id"]


class TestWilosPatterns:
    def test_six_patterns_with_paper_counts(self):
        patterns = build_patterns()
        assert sorted(patterns) == list("ABCDEF")
        counts = {p: patterns[p].cases for p in patterns}
        assert counts == {"A": 3, "B": 2, "C": 9, "D": 7, "E": 9, "F": 2}
        assert sum(counts.values()) == 32

    def test_fragment_registry_has_32_entries(self):
        fragments = all_fragments()
        assert len(fragments) == 32
        assert [f.index for f in fragments] == list(range(1, 33))
        assert fragments[0].location.startswith("ProjectService")

    def test_pattern_sources_parse_and_define_their_function(self):
        import ast

        for pattern in build_patterns().values():
            module = ast.parse(pattern.source)
            names = [
                n.name for n in module.body if isinstance(n, ast.FunctionDef)
            ]
            assert pattern.function_name in names

    def test_pattern_fragments_match_cases(self):
        for pattern in build_patterns().values():
            assert len(pattern.fragments) == pattern.cases
