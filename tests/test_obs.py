"""Unit tests for the observability subsystem.

Covers the metrics primitives (:class:`~repro.obs.metrics.Counter`,
:class:`~repro.obs.metrics.Gauge`, :class:`~repro.obs.metrics.Histogram`,
:class:`~repro.obs.metrics.MetricsRegistry`), the tracer surface
(:class:`~repro.obs.trace.Span`, :class:`~repro.obs.trace.QueryTrace`,
:class:`~repro.obs.trace.Tracer` with its slow-query log and prepare-note
attribution), the engine facade wiring (``EngineBuilder.tracing``,
``Engine.metrics()``, the tracing/metrics/feedback sections of
``Engine.stats()``), and the runtime-feedback hooks on the statistics
catalog (:meth:`~repro.db.statistics.StatisticsCatalog.observe`).
"""

from __future__ import annotations

import pytest

from repro.api import Engine
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QueryTrace,
    Tracer,
)


def make_engine(**tracing_kwargs) -> Engine:
    builder = (
        Engine.builder()
        .orders_workload(num_orders=120, num_customers=12)
        .network("slow-remote")
    )
    if tracing_kwargs.pop("tracing", True):
        builder.tracing(**tracing_kwargs)
    return builder.build()


# -- metrics primitives --------------------------------------------------------


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("requests")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_cannot_decrease(self):
        counter = Counter("requests")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_settable_gauge(self):
        gauge = Gauge("depth")
        gauge.set(3.5)
        assert gauge.value == 3.5

    def test_callback_backed_gauge_reads_live(self):
        state = {"depth": 1}
        gauge = Gauge("depth", fn=lambda: state["depth"])
        assert gauge.value == 1
        state["depth"] = 7
        assert gauge.value == 7

    def test_callback_backed_gauge_rejects_set(self):
        gauge = Gauge("depth", fn=lambda: 0.0)
        with pytest.raises(ValueError):
            gauge.set(1.0)


class TestHistogram:
    def test_empty_has_no_statistics(self):
        histogram = Histogram()
        assert histogram.count == 0
        assert histogram.mean is None
        assert histogram.min is None
        assert histogram.max is None
        assert histogram.percentile(0.5) is None

    def test_single_sample_is_every_percentile(self):
        histogram = Histogram.from_samples([0.25])
        for quantile in (0.01, 0.5, 0.95, 0.99, 1.0):
            assert histogram.percentile(quantile) == 0.25

    def test_exact_nearest_rank_with_tracked_values(self):
        histogram = Histogram.from_samples([4.0, 1.0, 3.0, 2.0])
        assert histogram.percentile(0.25) == 1.0
        assert histogram.percentile(0.50) == 2.0
        assert histogram.percentile(0.75) == 3.0
        assert histogram.percentile(1.00) == 4.0

    def test_bucketed_percentile_returns_bucket_upper_bound(self):
        histogram = Histogram(buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 0.7, 5.0, 50.0):
            histogram.observe(value)
        # Ranks 1-2 land in the le_1 bucket, rank 3 in le_10, rank 4 in
        # le_100: the answer is the containing bucket's upper bound.
        assert histogram.percentile(0.50) == 1.0
        assert histogram.percentile(0.75) == 10.0
        assert histogram.percentile(1.00) == 100.0

    def test_overflow_bucket_answers_with_max(self):
        histogram = Histogram(buckets=(1.0,))
        histogram.observe(500.0)
        histogram.observe(900.0)
        assert histogram.percentile(0.99) == 900.0

    def test_quantile_domain_is_validated(self):
        histogram = Histogram.from_samples([1.0])
        with pytest.raises(ValueError):
            histogram.percentile(0.0)
        with pytest.raises(ValueError):
            histogram.percentile(1.5)

    def test_buckets_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0, 2.0))

    def test_default_buckets_strictly_increase(self):
        bounds = DEFAULT_LATENCY_BUCKETS
        assert all(b2 > b1 for b1, b2 in zip(bounds, bounds[1:]))

    def test_as_dict_exports_cumulative_buckets(self):
        histogram = Histogram(buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        exported = histogram.as_dict()
        assert exported["count"] == 3
        assert exported["min"] == 0.5
        assert exported["max"] == 50.0
        assert exported["buckets"]["le_1"] == 1
        assert exported["buckets"]["le_10"] == 2
        assert exported["buckets"]["le_inf"] == 3

    def test_mean_and_sum(self):
        histogram = Histogram.from_samples([1.0, 2.0, 3.0])
        assert histogram.sum == 6.0
        assert histogram.mean == 2.0


class TestMetricsRegistry:
    def test_instruments_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_cross_kind_name_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("shared")
        with pytest.raises(ValueError):
            registry.gauge("shared")
        with pytest.raises(ValueError):
            registry.histogram("shared")

    def test_views_are_lazy_and_snapshotted(self):
        registry = MetricsRegistry()
        state = {"calls": 0}

        def view():
            state["calls"] += 1
            return {"calls": state["calls"]}

        registry.register_view("subsystem", view)
        assert state["calls"] == 0  # registration alone never evaluates
        snapshot = registry.as_dict()
        assert snapshot["views"]["subsystem"] == {"calls": 1}
        assert "subsystem" in registry.views

    def test_summary_counts_instruments(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        registry.histogram("c")
        registry.register_view("d", dict)
        assert registry.summary() == {
            "counters": 1,
            "gauges": 1,
            "histograms": 1,
            "views": 1,
        }


# -- tracer surface ------------------------------------------------------------


class TestQueryTrace:
    def test_spans_append_at_the_running_cursor(self):
        trace = QueryTrace("query", "select 1", 1)
        trace.add_span("network_round_trip", 0.1)
        trace.add_span("execute", 0.2, tier="vectorized")
        execute = trace.find("execute")
        assert execute.offset == pytest.approx(0.1)
        assert execute.end == pytest.approx(0.3)
        trace.root.duration = 0.3
        trace.check_accounting()

    def test_accounting_rejects_sum_mismatch(self):
        trace = QueryTrace("query", "select 1", 1)
        trace.add_span("execute", 0.2)
        trace.root.duration = 0.5  # 0.3s of the root is unaccounted for
        with pytest.raises(AssertionError):
            trace.check_accounting()

    def test_accounting_rejects_overlapping_children(self):
        trace = QueryTrace("query", "select 1", 1)
        first = trace.add_span("execute", 0.2)
        second = trace.add_span("wal_flush", 0.1)
        second.offset = first.offset + 0.1  # force a 0.1s overlap
        trace.root.duration = 0.3
        with pytest.raises(AssertionError):
            trace.check_accounting()

    def test_informational_children_do_not_affect_accounting(self):
        trace = QueryTrace("pipeline", None, 1)
        batch = trace.add_span("execute", 0.4)
        batch.child("statement", 0.0, sql="select 1")
        batch.child("statement", 0.0, sql="select 2")
        trace.root.duration = 0.4
        trace.check_accounting()
        assert len(batch.children) == 2

    def test_find_all_and_as_dict(self):
        trace = QueryTrace("query", "select 1", 3)
        trace.add_span("fault", 0.01, kind="request")
        trace.add_span("fault", 0.01, kind="response")
        assert len(trace.find_all("fault")) == 2
        exported = trace.as_dict()
        assert exported["kind"] == "query"
        assert exported["sequence"] == 3
        assert [span["name"] for span in exported["spans"]] == [
            "fault",
            "fault",
        ]


class TestTracer:
    def test_start_finish_records_the_trace(self):
        tracer = Tracer()
        trace = tracer.start("query", "select 1")
        tracer.add_span("execute", 0.25)
        tracer.finish(trace, 0.25)
        assert tracer.traces_recorded == 1
        assert tracer.current is None
        recorded = tracer.traces[-1]
        assert recorded.duration == 0.25
        recorded.check_accounting()

    def test_trace_retention_is_bounded(self):
        tracer = Tracer(max_traces=4)
        for index in range(10):
            tracer.finish(tracer.start("query", f"q{index}"), 0.0)
        assert tracer.traces_recorded == 10
        assert len(tracer.traces) == 4
        assert tracer.traces[0].sql == "q6"

    def test_nested_exchanges_trace_separately(self):
        tracer = Tracer()
        outer = tracer.start("pipeline")
        inner = tracer.start("commit")
        tracer.add_span("wal_flush", 0.1)  # lands on the inner trace
        tracer.finish(inner, 0.1)
        assert tracer.current is outer
        tracer.finish(outer, 0.4)
        assert inner.find("wal_flush") is not None
        assert outer.find("wal_flush") is None

    def test_finish_error_marks_the_trace(self):
        tracer = Tracer()
        trace = tracer.start("update", "update t set x = 1")
        tracer.finish_error(trace, RuntimeError("boom"), elapsed=0.05)
        assert tracer.errors_recorded == 1
        assert tracer.traces[-1].error == "RuntimeError: boom"
        assert tracer.traces[-1].duration == 0.05

    def test_prepare_before_start_attaches_to_the_next_trace(self):
        tracer = Tracer()
        tracer.note_prepare("select 1", cache_hit=False)
        trace = tracer.start("query")
        tracer.finish(trace, 0.0)
        parse = trace.find("parse")
        assert parse.attributes == {"sql": "select 1", "cache_hit": False}
        assert trace.sql == "select 1"

    def test_prepare_inside_an_exchange_attaches_inline(self):
        # A server-side parse (raw-SQL update) happens after start(): the
        # parse span belongs to the *current* trace, not the next one.
        tracer = Tracer()
        trace = tracer.start("update")
        tracer.note_prepare("update t set x = 1", cache_hit=False)
        tracer.finish(trace, 0.0)
        assert trace.find("parse").attributes["sql"] == "update t set x = 1"
        assert trace.sql == "update t set x = 1"
        follow_up = tracer.start("query", "select 1")
        tracer.finish(follow_up, 0.0)
        assert follow_up.find("parse") is None  # nothing leaked forward

    def test_slow_query_log_applies_the_threshold(self):
        tracer = Tracer(slow_query_threshold=0.1)
        fast = tracer.start("query", "fast")
        tracer.finish(fast, 0.01)
        slow = tracer.start("query", "slow")
        tracer.finish(slow, 0.25)
        assert tracer.slow_queries_recorded == 1
        assert [trace.sql for trace in tracer.slow_queries] == ["slow"]

    def test_bound_registry_mirrors_outcomes(self):
        registry = MetricsRegistry()
        tracer = Tracer(slow_query_threshold=0.1, registry=registry)
        tracer.finish(tracer.start("query", "q"), 0.5)
        tracer.finish(tracer.start("commit"), 0.01)
        assert registry.counter("tracer.traces_recorded").value == 2
        assert registry.counter("tracer.slow_queries").value == 1
        assert registry.histogram("tracer.latency.query").count == 1
        assert registry.histogram("tracer.latency.commit").count == 1
        view = registry.as_dict()["views"]["tracer"]
        assert view["traces_recorded"] == 2

    def test_render_without_traces(self):
        assert Tracer().render() == "(no traces recorded)"

    def test_render_includes_spans_and_attributes(self):
        tracer = Tracer()
        trace = tracer.start("query", "select 1")
        tracer.add_span("execute", 0.25, tier="vectorized")
        tracer.finish(trace, 0.25)
        rendered = tracer.render()
        assert "query (0.250000s): select 1" in rendered
        assert "- execute" in rendered
        assert "tier=vectorized" in rendered

    def test_max_traces_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(max_traces=0)


# -- engine facade wiring ------------------------------------------------------


class TestEngineTracing:
    def test_untraced_engine_has_no_tracer(self):
        engine = make_engine(tracing=False)
        assert engine.tracer is None
        assert engine.stats()["tracing"] == {"enabled": False}

    def test_traced_engine_records_per_statement_traces(self):
        engine = make_engine()
        connection = engine.connect()
        connection.execute_query("select * from orders where o_id < 10")
        connection.execute_update(
            "update orders set o_quantity = 1 where o_id = 3"
        )
        kinds = [trace.kind for trace in engine.tracer.traces]
        assert kinds == ["query", "update"]
        for trace in engine.tracer.traces:
            trace.check_accounting()
        stats = engine.stats()
        assert stats["tracing"]["enabled"] is True
        assert stats["tracing"]["traces_recorded"] == 2

    def test_traced_query_root_equals_charged_latency(self):
        engine = make_engine()
        connection = engine.connect()
        before = connection.clock.now
        connection.execute_query("select * from orders where o_id < 10")
        charged = connection.clock.now - before
        trace = engine.tracer.traces[-1]
        assert trace.duration == pytest.approx(charged, abs=1e-12)

    def test_statement_cache_hits_surface_in_parse_spans(self):
        engine = make_engine()
        connection = engine.connect()
        sql = "select * from orders where o_id = ?"
        connection.execute_query(sql, (1,))
        connection.execute_query(sql, (2,))
        first, second = engine.tracer.traces
        assert first.find("parse").attributes["cache_hit"] is False
        assert second.find("parse").attributes["cache_hit"] is True

    def test_latency_histograms_count_exchanges(self):
        engine = make_engine()
        connection = engine.connect()
        for key in range(3):
            connection.execute_query(
                "select * from orders where o_id = ?", (key,)
            )
        histogram = engine.metrics().histogram("tracer.latency.query")
        assert histogram.count == 3
        assert histogram.min > 0.0

    def test_metrics_views_cover_the_subsystems(self):
        engine = make_engine()
        views = engine.metrics().as_dict()["views"]
        for name in ("execution", "feedback", "statement_cache", "tracer"):
            assert name in views, name
        assert engine.stats()["metrics"]["views"] >= 4

    def test_slow_query_threshold_builder_knob(self):
        # slow-remote round trips are 10ms+: a 1ms threshold catches every
        # statement, and setting the threshold alone implies tracing.
        engine = (
            Engine.builder()
            .orders_workload(num_orders=60, num_customers=10)
            .network("slow-remote")
            .slow_query_threshold(0.001)
            .build()
        )
        assert engine.tracer is not None
        connection = engine.connect()
        connection.execute_query("select * from orders where o_id < 5")
        assert engine.tracer.slow_queries_recorded == 1
        assert engine.stats()["tracing"]["slow_queries"] == 1

    def test_disabled_tracer_records_nothing(self):
        engine = make_engine(enabled=False)
        connection = engine.connect()
        connection.execute_query("select * from orders where o_id < 10")
        assert engine.tracer is not None
        assert engine.tracer.traces_recorded == 0


# -- runtime feedback ----------------------------------------------------------


class TestFeedbackHooks:
    def test_observe_counts_only_genuine_drift(self):
        engine = make_engine(tracing=False)
        statistics = engine.database.statistics
        statement = engine.database.prepare(
            "select * from orders where o_id < 10"
        )
        plan = statement.plan
        estimate = statistics.estimate_cardinality(plan)
        assert statistics.observe(plan, estimate) is False
        assert statistics.observe(plan, estimate * 10.0) is True
        assert statistics.observe(plan, estimate / 10.0) is True
        record = statistics.observed(plan)
        assert record["observations"] == 3
        assert record["drift_events"] == 2
        assert statistics.feedback_stats() == {
            "observations": 3,
            "drift_events": 2,
            "plans_tracked": 1,
        }

    def test_traced_execution_feeds_the_catalog(self):
        engine = make_engine()
        connection = engine.connect()
        connection.execute_query("select * from orders where o_id < 10")
        feedback = engine.stats()["feedback"]
        assert feedback["observations"] == 1
        assert feedback["plans_tracked"] == 1

    def test_statement_drift_counter_rides_on_observe_actual(self):
        engine = make_engine(tracing=False)
        statement = engine.database.prepare(
            "select * from orders where o_id < 10"
        )
        estimate = statement.estimate().cardinality
        assert statement.observe_actual(int(estimate)) is False
        assert statement.observe_actual(int(estimate * 100) + 100) is True
        assert statement.drift_events == 1

    def test_analyze_invalidates_cached_estimates(self):
        engine = make_engine(tracing=False)
        database = engine.database
        statistics = database.statistics
        statement = database.prepare("select * from orders")
        plan = statement.plan
        baseline = statistics.estimate_cardinality(plan)
        assert statistics.observe(plan, baseline) is False
        # Grow the table 10x and re-analyze: the cached per-plan estimate
        # must refresh, so the old cardinality now reads as drift.
        rows = [
            {
                "o_id": 10_000 + i,
                "o_customer_sk": i % 12,
                "o_item_sk": i % 7,
                "o_quantity": 1,
                "o_list_price": 10.0,
                "o_sales_price": 9.0,
                "o_wholesale_cost": 5.0,
                "o_ext_ship_cost": 1.0,
                "o_net_paid": 9.0,
                "o_net_profit": 4.0,
                "o_order_date": 20260101,
                "o_status": "OPEN",
                "o_comment": "x",
            }
            for i in range(1200)
        ]
        database.insert("orders", rows)
        database.analyze()
        assert statistics.observe(plan, baseline) is True
