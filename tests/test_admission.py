"""Admission control and the open-loop load generator.

Controller math first (slot bookkeeping, FIFO ordering, priority reserve,
per-connection caps, queue timeouts), then the emergent behaviour: an
``AsyncEngine`` fleet saturating at the concurrency limit instead of
overlapping without bound, and the open-loop generator exposing the
latency knee once the offered rate crosses the server's capacity.
Extra seeds widen the loadgen sweep via ``FAULT_SEEDS``.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.api.engine import Engine
from repro.db.database import Database
from repro.db.schema import Column, ColumnType
from repro.net.admission import (
    AdmissionController,
    AdmissionError,
    AdmissionStats,
)
from repro.net.faults import RequestTimeoutError
from repro.net.network import SLOW_REMOTE
from repro.workloads.loadgen import (
    LatencySummary,
    OpenLoopLoadGenerator,
)

SEEDS = [0, 7, 13] + [
    int(token) for token in os.environ.get("FAULT_SEEDS", "").split()
]


def make_database() -> Database:
    database = Database()
    database.create_table(
        "items",
        [
            Column("item_id", ColumnType.INT),
            Column("label", ColumnType.STRING, width=12),
        ],
        primary_key="item_id",
    )
    database.insert(
        "items",
        [{"item_id": i, "label": f"item{i}"} for i in range(32)],
    )
    return database


def make_engine(**admission) -> Engine:
    builder = Engine.builder().database(make_database()).network(SLOW_REMOTE)
    if admission:
        builder.admission(**admission)
    return builder.build()


class TestControllerMath:
    def test_configuration_validated(self):
        with pytest.raises(AdmissionError, match="at least 1"):
            AdmissionController(0)
        with pytest.raises(AdmissionError, match="per-connection"):
            AdmissionController(2, per_connection=0)
        with pytest.raises(AdmissionError, match="priority_slots"):
            AdmissionController(2, priority_slots=2)

    def test_free_slots_admit_without_wait(self):
        controller = AdmissionController(2)
        assert controller.admit(0.0, 1.0) == 0.0
        assert controller.admit(0.0, 1.0) == 0.0
        stats = controller.stats
        assert stats.admitted == 2
        assert stats.queued == 0
        assert stats.peak_in_flight == 2

    def test_excess_arrivals_queue_fifo(self):
        controller = AdmissionController(1)
        assert controller.admit(0.0, 1.0) == 0.0
        # Arrives while the slot is busy: waits until it frees...
        assert controller.admit(0.0, 1.0) == 1.0
        # ...and the third queues behind the second (FIFO in virtual time).
        assert controller.admit(0.0, 1.0) == 2.0
        # A late arrival only waits for the remaining busy time.
        assert controller.admit(2.5, 1.0) == 0.5
        stats = controller.stats
        assert stats.admitted == 4
        assert stats.queued == 3
        assert stats.queue_seconds == pytest.approx(3.5)
        assert stats.peak_in_flight == 1

    def test_slot_reuse_after_drain(self):
        controller = AdmissionController(2)
        controller.admit(0.0, 1.0)
        controller.admit(0.0, 1.0)
        # Both slots free at t=1; a later arrival pays nothing.
        assert controller.admit(5.0, 1.0) == 0.0

    def test_queue_timeout_rejects_without_occupying(self):
        controller = AdmissionController(1, queue_timeout=0.5)
        controller.admit(0.0, 2.0)
        with pytest.raises(RequestTimeoutError) as excinfo:
            controller.admit(0.0, 1.0)
        # The rejection burned exactly the timeout on the virtual clock.
        assert excinfo.value.virtual_elapsed == 0.5
        assert controller.stats.queue_timeouts == 1
        assert controller.stats.admitted == 1
        # No slot was occupied: once the first drains, the next admit is
        # immediate rather than queued behind the rejected request.
        assert controller.admit(2.0, 1.0) == 0.0

    def test_per_connection_cap(self):
        controller = AdmissionController(4, per_connection=1)
        assert controller.admit(0.0, 1.0, connection="a") == 0.0
        # Three server slots are free, but "a" is at its own cap.
        assert controller.admit(0.0, 1.0, connection="a") == 1.0
        # A different connection sails through.
        assert controller.admit(0.0, 1.0, connection="b") == 0.0
        controller.release_connection("a")
        assert "a" not in controller._connection_slots

    def test_priority_reserve(self):
        controller = AdmissionController(2, priority_slots=1)
        # Normal traffic queues on the non-reserved slot...
        assert controller.admit(0.0, 1.0) == 0.0
        assert controller.admit(0.0, 1.0) == 1.0
        # ...while a priority request takes the reserved one immediately.
        assert controller.admit(0.0, 1.0, priority=True) == 0.0

    def test_reset_and_as_dict(self):
        controller = AdmissionController(
            2, per_connection=1, queue_timeout=3.0, priority_slots=1
        )
        controller.admit(0.0, 1.0, connection="a")
        controller.admit(0.0, 1.0, connection="b")
        controller.reset()
        assert controller.stats == AdmissionStats()
        assert controller.admit(0.0, 1.0, connection="a") == 0.0
        as_dict = controller.as_dict()
        assert as_dict["enabled"] is True
        assert as_dict["limit"] == 2
        assert as_dict["per_connection"] == 1
        assert as_dict["queue_timeout"] == 3.0
        assert as_dict["priority_slots"] == 1
        assert as_dict["admitted"] == 1


class TestAsyncSaturation:
    """The fleet-level property: overlap saturates at the limit."""

    CLIENTS = 6
    LIMIT = 2

    @staticmethod
    def _run_fleet(engine: Engine, clients: int) -> float:
        aengine = engine.aio()
        sql = "select * from items where item_id = ?"

        async def client(connection, key):
            await connection.execute(sql, (key,))

        async def fleet():
            connections = [aengine.connect() for _ in range(clients)]
            await asyncio.gather(
                *[
                    client(connection, key)
                    for key, connection in enumerate(connections)
                ]
            )

        asyncio.run(fleet())
        return aengine.elapsed

    def _service_seconds(self) -> float:
        engine = make_engine()
        connection = engine.connect()
        connection.execute_query(
            "select * from items where item_id = ?", (0,)
        )
        return connection.elapsed

    def test_unlimited_fleet_pays_one_latency(self):
        service = self._service_seconds()
        elapsed = self._run_fleet(make_engine(), self.CLIENTS)
        assert elapsed == pytest.approx(service, rel=1e-6)

    def test_limited_fleet_drains_in_waves(self):
        service = self._service_seconds()
        engine = make_engine(limit=self.LIMIT)
        elapsed = self._run_fleet(engine, self.CLIENTS)
        waves = self.CLIENTS / self.LIMIT
        assert elapsed == pytest.approx(waves * service, rel=1e-6)
        admission = engine.stats()["admission"]
        assert admission["enabled"] is True
        assert admission["admitted"] == self.CLIENTS
        assert admission["queued"] == self.CLIENTS - self.LIMIT
        assert admission["peak_in_flight"] == self.LIMIT

    def test_queue_time_surfaces_in_engine_stats(self):
        engine = make_engine(limit=self.LIMIT)
        self._run_fleet(engine, self.CLIENTS)
        stats = engine.stats()
        assert stats["network"]["queue_time"] > 0.0
        assert stats["network"]["queue_time"] == pytest.approx(
            stats["admission"]["queue_seconds"]
        )

    def test_queue_timeout_rejects_excess_clients(self):
        service = self._service_seconds()
        engine = make_engine(limit=1, queue_timeout=service * 1.5)
        aengine = engine.aio()
        sql = "select * from items where item_id = ?"
        outcomes = []

        async def client(connection, key):
            try:
                await connection.execute(sql, (key,))
                outcomes.append("ok")
            except RequestTimeoutError:
                outcomes.append("timeout")

        async def fleet():
            connections = [aengine.connect() for _ in range(4)]
            await asyncio.gather(
                *[
                    client(connection, key)
                    for key, connection in enumerate(connections)
                ]
            )

        asyncio.run(fleet())
        # Slot holder + one ~1-service waiter fit under the timeout; the
        # clients facing a >= 2-service wait are rejected.
        assert outcomes.count("ok") == 2
        assert outcomes.count("timeout") == 2
        assert engine.stats()["admission"]["queue_timeouts"] == 2

    def test_engine_without_admission_reports_disabled(self):
        engine = make_engine()
        assert engine.stats()["admission"] == {"enabled": False}


class TestLatencySummary:
    def test_nearest_rank_percentiles(self):
        samples = [float(value) for value in range(1, 101)]
        summary = LatencySummary.from_samples(samples)
        assert summary.count == 100
        assert summary.p50 == 50.0
        assert summary.p95 == 95.0
        assert summary.p99 == 99.0
        assert summary.max == 100.0
        assert summary.mean == pytest.approx(50.5)

    def test_single_sample_is_every_percentile(self):
        summary = LatencySummary.from_samples([2.5])
        assert (
            summary.p50 == summary.p95 == summary.p99 == summary.max == 2.5
        )
        assert summary.mean == 2.5
        assert summary.count == 1

    def test_empty_population_has_no_percentiles(self):
        # An empty population has no percentiles — None, not a fake 0.0.
        summary = LatencySummary.from_samples([])
        assert summary.count == 0
        assert summary.mean is None
        assert summary.p50 is None
        assert summary.p95 is None
        assert summary.p99 is None
        assert summary.max is None

    def test_two_samples_nearest_rank(self):
        summary = LatencySummary.from_samples([4.0, 1.0])
        assert summary.p50 == 1.0  # rank ceil(0.5 * 2) = 1
        assert summary.p95 == 4.0
        assert summary.p99 == 4.0
        assert summary.max == 4.0

    def test_matches_shared_histogram(self):
        from repro.obs.metrics import Histogram

        samples = [0.25 * value for value in range(1, 41)]
        summary = LatencySummary.from_samples(samples)
        histogram = Histogram.from_samples(samples)
        assert summary.p50 == histogram.percentile(0.50)
        assert summary.p95 == histogram.percentile(0.95)
        assert summary.p99 == histogram.percentile(0.99)


class TestOpenLoopLoadGenerator:
    READ_SQL = "select * from items where item_id = ?"
    WRITE_SQL = "update items set label = 'w' where item_id = ?"

    def _loadgen(self, engine: Engine, **kwargs) -> OpenLoopLoadGenerator:
        defaults = dict(
            rate=2.0,
            operations=40,
            read_sql=self.READ_SQL,
            read_params=lambda rng: (rng.randrange(32),),
        )
        defaults.update(kwargs)
        return OpenLoopLoadGenerator(engine.connect(), **defaults)

    def test_configuration_validated(self):
        engine = make_engine()
        with pytest.raises(ValueError, match="rate"):
            self._loadgen(engine, rate=0.0)
        with pytest.raises(ValueError, match="operations"):
            self._loadgen(engine, operations=-1)
        with pytest.raises(ValueError, match="read_fraction"):
            self._loadgen(engine, read_fraction=1.5)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_same_report(self, seed):
        first = self._loadgen(make_engine(), seed=seed).run()
        second = self._loadgen(make_engine(), seed=seed).run()
        assert first.as_dict() == second.as_dict()

    def test_below_capacity_latency_sits_at_service_time(self):
        engine = make_engine(limit=4)
        report = self._loadgen(engine, rate=1.0, seed=3).run()
        service = SLOW_REMOTE.round_trip_seconds
        assert report.operations == 40
        assert report.latency.p50 >= service
        # Well under capacity, even p95 stays near one service time.
        assert report.latency.p95 < 3 * report.latency.p50
        assert report.throughput <= 1.5  # bounded by the offered rate

    @pytest.mark.parametrize("seed", SEEDS)
    def test_above_capacity_queue_grows(self, seed):
        service = 0.5  # slow-remote point lookup is ~0.5s
        capacity = 1 / service  # limit=1
        overload = self._loadgen(
            make_engine(limit=1),
            rate=4 * capacity,
            seed=seed,
        ).run()
        relaxed = self._loadgen(
            make_engine(limit=1),
            rate=0.5 * capacity,
            seed=seed,
        ).run()
        assert overload.latency.p95 > 2 * relaxed.latency.p95
        assert overload.throughput < 4 * capacity

    def test_read_write_mix_counted(self):
        engine = make_engine()
        report = self._loadgen(
            engine,
            write_sql=self.WRITE_SQL,
            write_params=lambda rng: (rng.randrange(32),),
            read_fraction=0.5,
            seed=5,
        ).run()
        assert report.reads + report.writes == report.operations == 40
        assert report.reads > 0 and report.writes > 0
        assert report.write_latency.count == report.writes
        assert report.conflicts == 0  # single client: no rivals

    def test_queue_timeouts_count_as_rejected(self):
        engine = make_engine(limit=1, queue_timeout=0.25)
        report = self._loadgen(engine, rate=8.0, seed=1).run()
        assert report.rejected > 0
        assert report.operations + report.rejected == 40
        assert report.latency.count == report.operations
        assert (
            engine.stats()["admission"]["queue_timeouts"] == report.rejected
        )

    def test_zero_operations_report_is_empty(self):
        report = self._loadgen(make_engine(), operations=0).run()
        assert report.operations == 0
        assert report.duration == 0.0
        assert report.throughput == 0.0
