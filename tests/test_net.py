"""Unit tests for the virtual clock, network conditions, and connection."""

import pytest

from repro.db.database import Database
from repro.db.schema import Column, ColumnType
from repro.net.clock import VirtualClock
from repro.net.connection import SimulatedConnection
from repro.net.network import FAST_LOCAL, PRESETS, SLOW_REMOTE, NetworkConditions


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_reset_and_elapsed_since(self):
        clock = VirtualClock()
        clock.advance(3.0)
        start = clock.now
        clock.advance(2.0)
        assert clock.elapsed_since(start) == pytest.approx(2.0)
        clock.reset()
        assert clock.now == 0.0


class TestNetworkConditions:
    def test_presets_match_paper_parameters(self):
        assert SLOW_REMOTE.bandwidth_bytes_per_sec == pytest.approx(62_500)
        assert SLOW_REMOTE.round_trip_seconds == pytest.approx(0.5)
        assert FAST_LOCAL.bandwidth_bytes_per_sec == pytest.approx(7.5e8)
        assert FAST_LOCAL.round_trip_seconds == pytest.approx(0.0005)
        assert set(PRESETS) == {"slow-remote", "fast-local"}

    def test_transfer_time(self):
        assert SLOW_REMOTE.transfer_time(62_500) == pytest.approx(1.0)
        assert FAST_LOCAL.transfer_time(0) == 0.0

    def test_transfer_time_rejects_negative(self):
        with pytest.raises(ValueError):
            SLOW_REMOTE.transfer_time(-1)

    def test_round_trips(self):
        assert SLOW_REMOTE.round_trips(4) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            SLOW_REMOTE.round_trips(-1)

    def test_invalid_conditions_rejected(self):
        with pytest.raises(ValueError):
            NetworkConditions("x", 0, 0.1)
        with pytest.raises(ValueError):
            NetworkConditions("x", 100, -0.1)

    def test_scaled(self):
        scaled = SLOW_REMOTE.scaled(bandwidth_factor=2, latency_factor=0.5)
        assert scaled.bandwidth_bytes_per_sec == pytest.approx(125_000)
        assert scaled.round_trip_seconds == pytest.approx(0.25)


def _tiny_database() -> Database:
    database = Database()
    database.create_table(
        "items",
        [Column("item_id", ColumnType.INT), Column("label", ColumnType.STRING, width=56)],
        primary_key="item_id",
    )
    database.insert("items", [{"item_id": i, "label": f"item{i}"} for i in range(100)])
    database.analyze()
    return database


class TestSimulatedConnection:
    def test_query_advances_clock_by_at_least_one_round_trip(self):
        connection = SimulatedConnection(_tiny_database(), SLOW_REMOTE)
        connection.execute_query("select * from items")
        assert connection.elapsed >= SLOW_REMOTE.round_trip_seconds

    def test_transfer_time_scales_with_result_size(self):
        database = _tiny_database()
        slow = SimulatedConnection(database, SLOW_REMOTE)
        slow.execute_query("select * from items")
        big = slow.elapsed
        slow_small = SimulatedConnection(database, SLOW_REMOTE)
        slow_small.execute_query("select * from items where item_id = 1")
        assert big > slow_small.elapsed

    def test_fast_network_is_faster(self):
        database = _tiny_database()
        slow = SimulatedConnection(database, SLOW_REMOTE)
        fast = SimulatedConnection(database, FAST_LOCAL)
        slow.execute_query("select * from items")
        fast.execute_query("select * from items")
        assert fast.elapsed < slow.elapsed

    def test_stats_accumulate(self):
        connection = SimulatedConnection(_tiny_database(), FAST_LOCAL)
        connection.execute_query("select * from items")
        connection.execute_lookup("items", "item_id", 5)
        stats = connection.stats
        assert stats.queries == 2
        assert stats.round_trips == 2
        assert stats.rows_transferred == 101
        assert stats.bytes_transferred > 0

    def test_lookup_returns_matching_row(self):
        connection = SimulatedConnection(_tiny_database(), FAST_LOCAL)
        result = connection.execute_lookup("items", "item_id", 7)
        assert result.rows[0]["label"] == "item7"

    def test_execute_update_counts_a_round_trip(self):
        connection = SimulatedConnection(_tiny_database(), SLOW_REMOTE)
        changed = connection.execute_update(
            "update items set label = 'x' where item_id = ?", (3,)
        )
        assert changed == 1
        assert connection.elapsed == pytest.approx(SLOW_REMOTE.round_trip_seconds)

    def test_reset_clears_clock_and_stats(self):
        connection = SimulatedConnection(_tiny_database(), FAST_LOCAL)
        connection.execute_query("select * from items")
        connection.reset()
        assert connection.elapsed == 0.0
        assert connection.stats.queries == 0
