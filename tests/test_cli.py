"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import main
from repro.workloads.programs import P0_SOURCE
from repro.workloads.wilos_programs import PATTERN_D_SOURCE


@pytest.fixture()
def program_file(tmp_path):
    path = tmp_path / "program.py"
    path.write_text(P0_SOURCE)
    return path


class TestOptimizeCommand:
    def test_optimize_prints_choice_and_rewrite(self, program_file):
        out = io.StringIO()
        code = main(
            [
                "optimize",
                str(program_file),
                "--network",
                "slow-remote",
                "--scale",
                "500",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "chosen strategy" in text
        assert "def process_orders" in text
        assert "estimated speedup" in text

    def test_optimize_show_alternatives_and_heuristic(self, program_file):
        out = io.StringIO()
        main(
            [
                "optimize",
                str(program_file),
                "--scale",
                "300",
                "--show-alternatives",
                "--heuristic",
            ],
            out=out,
        )
        text = out.getvalue()
        assert "alternatives per region" in text
        assert "heuristic (always push to SQL) rewrite" in text
        assert "sql-join" in text and "prefetch" in text

    def test_optimize_stats_flag_prints_engine_statistics(self, program_file):
        out = io.StringIO()
        code = main(
            [
                "optimize",
                str(program_file),
                "--scale",
                "300",
                "--stats",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "engine statistics:" in text
        assert "statement_cache.hits" in text
        assert "statement_cache.misses" in text
        assert "network.round_trips" in text
        assert "database.queries_executed" in text

    def test_optimize_wal_and_fault_flags_render_in_stats(self, program_file):
        out = io.StringIO()
        code = main(
            [
                "optimize",
                str(program_file),
                "--scale",
                "300",
                "--wal",
                "--fault-rate",
                "0.1",
                "--fault-seed",
                "7",
                "--stats",
            ],
            out=out,
        )
        text = out.getvalue()
        assert code == 0
        assert "wal.enabled" in text
        assert "wal.records" in text
        assert "faults.injected" in text
        assert "faults.retries" in text

    def test_optimize_with_wilos_workload_and_af(self, tmp_path):
        path = tmp_path / "pattern_d.py"
        path.write_text(PATTERN_D_SOURCE)
        out = io.StringIO()
        code = main(
            [
                "optimize",
                str(path),
                "--workload",
                "wilos",
                "--scale",
                "500",
                "--amortization",
                "50",
            ],
            out=out,
        )
        assert code == 0
        assert "chosen strategy      : prefetch" in out.getvalue()

    def test_optimize_with_catalog_file(self, program_file, tmp_path):
        catalog_out = io.StringIO()
        catalog_path = tmp_path / "catalog.json"
        main(
            ["catalog", "--network", "slow-remote", "--out", str(catalog_path)],
            out=catalog_out,
        )
        assert catalog_path.exists()
        data = json.loads(catalog_path.read_text())
        assert data["network_round_trip"] == pytest.approx(0.5)

        out = io.StringIO()
        code = main(
            [
                "optimize",
                str(program_file),
                "--catalog",
                str(catalog_path),
                "--scale",
                "300",
            ],
            out=out,
        )
        assert code == 0


class TestExperimentCommand:
    def test_fig14(self):
        out = io.StringIO()
        assert main(["experiment", "fig14"], out=out) == 0
        assert "Nested loops" in out.getvalue()

    def test_fig16(self):
        out = io.StringIO()
        assert main(["experiment", "fig16"], out=out) == 0
        assert "ProjectService (1139)" in out.getvalue()

    def test_opt_time(self):
        out = io.StringIO()
        assert main(["experiment", "opt-time", "--scale", "500"], out=out) == 0
        assert "optimization_seconds" in out.getvalue()

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"], out=io.StringIO())


class TestArgumentValidation:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([], out=io.StringIO())

    def test_catalog_requires_out(self):
        with pytest.raises(SystemExit):
            main(["catalog"], out=io.StringIO())
