"""Unit tests for SQL generation (round trips through the parser)."""

import pytest

from repro.db import algebra
from repro.db.expressions import BinaryOp, ColumnRef, equals
from repro.db.sqlgen import SQLGenerationError, to_sql
from repro.db.sqlparser import parse_sql


class TestRendering:
    def test_scan(self):
        assert to_sql(algebra.Scan("orders")) == "select * from orders"

    def test_scan_with_alias(self):
        assert to_sql(algebra.Scan("orders", "o")) == "select * from orders o"

    def test_select(self):
        plan = algebra.Select(algebra.Scan("t"), equals("a", 1))
        assert to_sql(plan) == "select * from t where a = 1"

    def test_projection(self):
        plan = algebra.Project(
            algebra.Scan("sales"),
            (
                algebra.OutputColumn(ColumnRef("month"), "month"),
                algebra.OutputColumn(ColumnRef("sale_amt"), "sale_amt"),
            ),
        )
        assert to_sql(plan) == "select month, sale_amt from sales"

    def test_join(self):
        plan = algebra.Join(
            algebra.Scan("orders", "o"),
            algebra.Scan("customer", "c"),
            BinaryOp(
                "=", ColumnRef("o_customer_sk", "o"), ColumnRef("c_customer_sk", "c")
            ),
        )
        sql = to_sql(plan)
        assert sql == (
            "select * from orders o join customer c "
            "on o.o_customer_sk = c.c_customer_sk"
        )

    def test_join_with_filtered_left_side(self):
        plan = algebra.Join(
            algebra.Select(algebra.Scan("orders"), equals("o_status", "OPEN")),
            algebra.Scan("customer"),
            BinaryOp(
                "=",
                ColumnRef("o_customer_sk", "orders"),
                ColumnRef("c_customer_sk", "customer"),
            ),
        )
        sql = to_sql(plan)
        assert "where o_status = 'OPEN'" in sql
        assert "join customer" in sql

    def test_aggregate(self):
        plan = algebra.Aggregate(
            algebra.Scan("sales"),
            (),
            (algebra.AggregateSpec("sum", ColumnRef("sale_amt"), "sum_sale_amt"),),
        )
        assert to_sql(plan) == "select sum(sale_amt) from sales"

    def test_grouped_aggregate(self):
        plan = algebra.Aggregate(
            algebra.Scan("sales"),
            (ColumnRef("month"),),
            (algebra.AggregateSpec("count", None, "n"),),
        )
        sql = to_sql(plan)
        assert "group by month" in sql and "count(*) as n" in sql

    def test_sort_and_limit(self):
        plan = algebra.Limit(
            algebra.Sort(
                algebra.Scan("t"),
                (algebra.SortKey(ColumnRef("a"), ascending=False),),
            ),
            10,
        )
        assert to_sql(plan) == "select * from t order by a desc limit 10"


class TestRoundTrips:
    @pytest.mark.parametrize(
        "sql",
        [
            "select * from orders",
            "select * from orders o",
            "select month, sale_amt from sales order by month",
            "select * from orders o join customer c on o.o_customer_sk = c.c_customer_sk",
            "select sum(sale_amt) from sales",
            "select * from t where a = 1 and b > 2",
            "select * from t where c_customer_sk = ?",
            "select count(*) from concrete_task where activity_id = ?",
        ],
    )
    def test_parse_render_parse_is_stable(self, sql):
        first = to_sql(parse_sql(sql))
        second = to_sql(parse_sql(first))
        assert first == second

    def test_unsupported_shape_raises(self):
        # A projection on top of another projection cannot be rendered as one
        # SELECT statement.
        inner = algebra.Project(
            algebra.Scan("t"), (algebra.OutputColumn(ColumnRef("a"), "a"),)
        )
        outer = algebra.Project(
            inner, (algebra.OutputColumn(ColumnRef("a"), "a"),)
        )
        with pytest.raises(SQLGenerationError):
            to_sql(outer)
