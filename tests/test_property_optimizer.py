"""Property-based tests for the optimizer, cost model, and virtual clock.

Invariants checked:

* COBRA's chosen cost is never above the original program's cost, for any
  cardinality mix and network condition;
* the cost of every query is monotone in the network round-trip time and
  antitone in bandwidth;
* prefetch cost is antitone in the amortization factor;
* the generated program is always equivalent to the original on random data;
* the virtual clock only moves forward.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cost_model import CostModel, CostParameters
from repro.core.optimizer import CobraOptimizer
from repro.db.statistics import TableStatistics
from repro.experiments.figure13 import build_stats_only_database
from repro.net.clock import VirtualClock
from repro.net.network import NetworkConditions
from repro.workloads import programs, tpcds

cardinalities = st.integers(min_value=10, max_value=2_000_000)
bandwidths = st.floats(min_value=1e4, max_value=1e10)
latencies = st.floats(min_value=1e-5, max_value=1.0)


class TestCostModelProperties:
    @given(orders=cardinalities, customers=cardinalities, bandwidth=bandwidths, latency=latencies)
    @settings(max_examples=40, deadline=None)
    def test_best_cost_never_exceeds_original(
        self, orders, customers, bandwidth, latency
    ):
        database = build_stats_only_database(orders, customers)
        network = NetworkConditions("random", bandwidth, latency)
        optimizer = CobraOptimizer(
            database,
            CostParameters.for_network(network),
            registry=tpcds.build_registry(),
        )
        result = optimizer.optimize(programs.P0_SOURCE)
        assert result.best_cost <= result.original_cost + 1e-9
        assert result.best_cost > 0

    @given(latency=latencies)
    @settings(max_examples=30, deadline=None)
    def test_query_cost_monotone_in_latency(self, latency):
        database = build_stats_only_database(10_000, 1_000)
        slow = CostModel(
            database,
            CostParameters(network_round_trip=latency, bandwidth_bytes_per_sec=1e6),
        )
        slower = CostModel(
            database,
            CostParameters(
                network_round_trip=latency * 2, bandwidth_bytes_per_sec=1e6
            ),
        )
        sql = "select * from orders"
        assert slower.query_cost(sql) >= slow.query_cost(sql)

    @given(bandwidth=bandwidths)
    @settings(max_examples=30, deadline=None)
    def test_query_cost_antitone_in_bandwidth(self, bandwidth):
        database = build_stats_only_database(10_000, 1_000)
        base = CostModel(
            database,
            CostParameters(network_round_trip=0.01, bandwidth_bytes_per_sec=bandwidth),
        )
        faster = CostModel(
            database,
            CostParameters(
                network_round_trip=0.01, bandwidth_bytes_per_sec=bandwidth * 2
            ),
        )
        sql = "select * from orders"
        assert faster.query_cost(sql) <= base.query_cost(sql) + 1e-12

    @given(factor=st.floats(min_value=1.0, max_value=1000.0))
    @settings(max_examples=30, deadline=None)
    def test_prefetch_cost_antitone_in_amortization(self, factor):
        database = build_stats_only_database(10_000, 1_000)
        base = CostModel(database, CostParameters())
        amortised = CostModel(
            database, CostParameters().with_amortization(factor)
        )
        assert (
            amortised.prefetch_cost("customer", None)
            <= base.prefetch_cost("customer", None) + 1e-12
        )

    @given(orders=cardinalities)
    @settings(max_examples=30, deadline=None)
    def test_costs_scale_with_cardinality(self, orders):
        small = build_stats_only_database(orders, 1_000)
        big = build_stats_only_database(orders * 2, 1_000)
        params = CostParameters()
        sql = "select * from orders"
        assert (
            CostModel(big, params).query_cost(sql)
            >= CostModel(small, params).query_cost(sql) - 1e-12
        )


class TestGeneratedProgramEquivalence:
    @given(
        num_orders=st.integers(min_value=5, max_value=120),
        num_customers=st.integers(min_value=2, max_value=60),
        seed=st.integers(min_value=1, max_value=10_000),
        slow=st.booleans(),
    )
    @settings(max_examples=15, deadline=None)
    def test_rewrite_equivalent_on_random_data(
        self, num_orders, num_customers, seed, slow
    ):
        from repro.net.network import FAST_LOCAL, SLOW_REMOTE

        network = SLOW_REMOTE if slow else FAST_LOCAL
        runtime = tpcds.build_runtime(
            num_orders=num_orders,
            num_customers=num_customers,
            network=network,
            seed=seed,
        )
        optimizer = CobraOptimizer(
            runtime.database,
            CostParameters.for_network(network),
            registry=tpcds.build_registry(),
        )
        result = optimizer.optimize(programs.P0_SOURCE)
        namespace = {"my_func": programs.my_func}
        exec(compile(result.rewritten_source, "<gen>", "exec"), namespace)
        rewritten = namespace["process_orders"]
        original_run = runtime.measure(programs.p0_orm)
        rewritten_run = runtime.measure(lambda rt: sorted(rewritten(rt)))
        assert rewritten_run.result == original_run.result


class TestClockProperties:
    @given(steps=st.lists(st.floats(min_value=0, max_value=100), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_clock_is_monotone_and_additive(self, steps):
        clock = VirtualClock()
        total = 0.0
        for step in steps:
            before = clock.now
            clock.advance(step)
            assert clock.now >= before
            total += step
        assert clock.now == pytest.approx(total)
