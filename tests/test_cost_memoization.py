"""Memoised costing must not change any cost the optimizer computes.

``DagCostCalculator`` memoises per-group minimum costs and per-block leaf
costs; ``StatisticsCatalog`` memoises plan-keyed cardinality and row-width
estimates.  These tests expand the real optimizer DAGs for the motivating
example and every Wilos pattern and verify the memoised calculator returns
exactly the costs of an unmemoised one, and that repeated statistics
estimates are stable across cache invalidation.
"""

from __future__ import annotations

import pytest

from repro.core.catalog import CostParameters
from repro.core.cost_model import CostModel
from repro.core.optimizer import CobraOptimizer
from repro.core.plans import DagCostCalculator
from repro.db.sqlparser import parse_sql
from repro.net.network import FAST_LOCAL, SLOW_REMOTE
from repro.workloads import tpcds
from repro.workloads.programs import P0_SOURCE
from repro.workloads.wilos_programs import build_patterns


def _expanded_dag(database, source, function_name=None, registry=None):
    parameters = CostParameters.for_network(FAST_LOCAL)
    optimizer = CobraOptimizer(database, parameters, registry=registry)
    result = optimizer.optimize(source, function_name=function_name)
    return result.dag, parameters


class TestGroupCostMemoization:
    def test_p0_costs_identical_with_and_without_memo(self, orders_database):
        dag, parameters = _expanded_dag(
            orders_database, P0_SOURCE, registry=tpcds.build_registry()
        )
        model = CostModel(orders_database, parameters)
        memoised = DagCostCalculator(dag, model, memoize=True)
        plain = DagCostCalculator(dag, model, memoize=False)
        for group in dag.iter_groups():
            assert memoised.group_cost(group) == plain.group_cost(group)

    @pytest.mark.parametrize("pattern_id", list("ABCDEF"))
    def test_wilos_costs_identical_with_and_without_memo(
        self, wilos_database, pattern_id
    ):
        pattern = build_patterns()[pattern_id]
        dag, parameters = _expanded_dag(
            wilos_database, pattern.source, function_name=pattern.function_name
        )
        model = CostModel(wilos_database, parameters)
        memoised = DagCostCalculator(dag, model, memoize=True)
        plain = DagCostCalculator(dag, model, memoize=False)
        for group in dag.iter_groups():
            assert memoised.group_cost(group) == plain.group_cost(group)

    def test_best_alternative_stable_under_memoization(self, wilos_database):
        pattern = build_patterns()["A"]
        dag, parameters = _expanded_dag(
            wilos_database, pattern.source, function_name=pattern.function_name
        )
        model = CostModel(wilos_database, parameters)
        memoised = DagCostCalculator(dag, model, memoize=True)
        plain = DagCostCalculator(dag, model, memoize=False)
        for group in dag.iter_groups():
            assert (
                memoised.best_alternative(group).key
                == plain.best_alternative(group).key
            )

    def test_clear_resets_memo(self, orders_database):
        dag, parameters = _expanded_dag(
            orders_database, P0_SOURCE, registry=tpcds.build_registry()
        )
        model = CostModel(orders_database, parameters)
        calculator = DagCostCalculator(dag, model)
        before = calculator.group_cost(dag.root)
        calculator.clear()
        assert calculator.group_cost(dag.root) == before


class TestStatisticsMemoization:
    QUERIES = [
        "select * from orders",
        "select * from orders where o_customer_sk = 7",
        "select * from orders o join customer c "
        "on o.o_customer_sk = c.c_customer_sk",
        "select o_customer_sk, count(*) from orders group by o_customer_sk",
    ]

    def test_estimates_stable_across_repeats_and_fresh_parses(
        self, orders_database
    ):
        statistics = orders_database.statistics
        for sql in self.QUERIES:
            plan = parse_sql(sql)
            first = statistics.estimate_cardinality(plan)
            # Cached (same object) and freshly parsed (equal object) hits.
            assert statistics.estimate_cardinality(plan) == first
            assert statistics.estimate_cardinality(parse_sql(sql)) == first
            width = statistics.estimate_row_width(plan)
            assert statistics.estimate_row_width(parse_sql(sql)) == width

    def test_refresh_invalidates_plan_estimates(self):
        database = tpcds.build_orders_database(num_orders=50, num_customers=10)
        plan = parse_sql("select * from orders")
        assert database.statistics.estimate_cardinality(plan) == 50.0
        database.insert(
            "orders",
            [{"o_id": 10_000 + i, "o_customer_sk": 1} for i in range(25)],
        )
        database.analyze()
        assert database.statistics.estimate_cardinality(plan) == 75.0

    def test_optimizer_choice_unchanged_by_memoization(self, orders_database):
        """End-to-end: the chosen plan and costs match across both networks."""
        registry = tpcds.build_registry()
        for network in (FAST_LOCAL, SLOW_REMOTE):
            parameters = CostParameters.for_network(network)
            first = CobraOptimizer(
                orders_database, parameters, registry=registry
            ).optimize(P0_SOURCE)
            second = CobraOptimizer(
                orders_database, parameters, registry=registry
            ).optimize(P0_SOURCE)
            assert first.best_cost == second.best_cost
            assert first.original_cost == second.original_cost
            assert first.chosen_strategies == second.chosen_strategies
