"""Engine performance benchmarks: compiled executor and optimizer wall-clock.

Run directly (``python benchmarks/bench_engine.py`` or ``make bench``).  Two
benchmark families are timed:

* **Executor microbenchmarks** — scan+filter, hash/index join, and grouped
  aggregation over a 50k-row orders table, executed once with the interpreted
  (tree-walking) executor and once with the compiled-expression executor.
  Row-for-row result equality between the two modes is asserted as part of
  the run.  The ``*_vectorized`` entries (``scan_filter_vectorized``,
  ``hash_join_wide_vectorized``, ``aggregate_vectorized``) additionally time
  the vectorized batch tier on the same plans, reporting its speedup over
  the interpreted baseline (and over the compiled row tier); vectorized
  results are asserted row-identical to the interpreted ones.  The
  ``*_codegen`` entries (``scan_filter_codegen``, ``aggregate_codegen``,
  ``dict_filter_strings``) time the fused-pipeline codegen path against the
  batch-kernel path on the same plans (interleaved min-of so allocator
  drift hits both equally), asserting row equality and that codegen
  actually served the run; ``dict_filter_strings`` additionally compares a
  string-equality filter over the dictionary-encoded column against the
  same filter with strings stored boxed.

* **Prepared-statement point lookups** — the N+1 lazy-load query shape
  (``select * from customers where c_id = ?``) executed over and over with
  changing parameters, once through the pre-prepared-statement client path
  (parse to execute + parse to estimate, every call) and once through one
  :class:`repro.db.database.PreparedStatement` (parse once, plan-keyed
  estimate cached, index-backed execution).  Result equality between the two
  paths is asserted.

* **Pipelined executemany** — a 1 000-tuple parameterized ``executemany``
  over the slow-remote network, once through the per-tuple client path (one
  ``SimulatedNetwork`` round trip per tuple, the pre-pipeline driver) and
  once through the pipelined cursor (the whole batch in ONE round trip).
  Reported in *virtual* seconds — the deterministic network-model time the
  paper's cost formulas price — alongside wall-clock; result equality
  between the two paths is asserted.

* **Async concurrent clients** — N asyncio clients each replaying point
  lookups on the slow-remote network, once strictly sequentially and once
  concurrently through ``repro.api.aio`` (overlapping in-flight requests on
  the shared clock pay max-latency, not sum-latency).

* **Sharded execution** — the same data hash-partitioned over 8 shards:
  ``sharded_point_lookup`` times a shard-key point predicate through the
  router's single-shard routed class (and the shard-aware prepared fast
  path) against the same plan forced through scatter-gather;
  ``sharded_scan_filter`` and ``sharded_aggregate`` time scatter-gather
  filtering and partial-aggregate merging against unsharded execution.
  Result equality (routed ≡ scatter ≡ unsharded, as row sets) is asserted
  as part of the run.

* **WAL overhead** — the write path (bulk insert + predicate UPDATEs) with
  and without the write-ahead log; recovery equivalence (log replay
  reproduces the live state row-for-row) is asserted as part of the run.

* **Fault-retry convergence** — a seeded fault-injected workload (timeouts,
  drops, transient server errors, retried with capped exponential backoff
  on the virtual clock) against the identical fault-free workload;
  row-for-row equality of every result and of the final table state is
  asserted, and the virtual-time cost of the faults is reported.

* **MVCC reader/writer** — an open-loop read workload against an MVCC
  engine, once write-free and once with a concurrent transactional write
  mix: snapshot readers must not serialize behind writers (read p50 within
  1.2x of the write-free baseline, asserted), and a snapshot opened before
  a committed write must still see the old rows (asserted).

* **Admission open loop** — Poisson arrivals at 0.5x / 1x / 2x the
  admission-controlled server's capacity, reporting p50/p95/p99 virtual
  latency per rate; the queueing knee (p95 blowing up past the limit) is
  asserted visible.

* **Tracing overhead** — the vectorized scan_filter query through the full
  connection path with no tracer, a disabled tracer, and tracing enabled;
  enabled tracing is asserted within 5% of the untraced wall time and a
  disabled tracer asserted free.

* **End-to-end optimizer** — ``CobraOptimizer.optimize()`` wall-clock on the
  Figure 13 motivating program (P0) and all six Wilos patterns, i.e. the
  workloads the opt-time experiment reports.

Results are written to ``BENCH_engine.json`` in the repository root (path
overridable via ``BENCH_ENGINE_OUT``, used by the CI smoke run) so later
PRs can track the performance trajectory.  Scale is adjustable via the
``BENCH_ENGINE_ROWS`` environment variable (default 50 000).

This file is intentionally *not* named ``test_*``: it is a standalone
harness, not part of the pytest benchmark suite.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Callable

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.core.catalog import CostParameters  # noqa: E402
from repro.core.optimizer import CobraOptimizer  # noqa: E402
from repro.db import algebra  # noqa: E402
from repro.db.database import Database  # noqa: E402
from repro.db.executor import Executor  # noqa: E402
from repro.db.expressions import (  # noqa: E402
    BinaryOp,
    BooleanOp,
    ColumnRef,
    Literal,
)
from repro.db.schema import Column, ColumnType  # noqa: E402
from repro.net.network import FAST_LOCAL  # noqa: E402
from repro.workloads import tpcds  # noqa: E402
from repro.workloads.programs import P0_SOURCE  # noqa: E402
from repro.workloads.wilos import build_wilos_database  # noqa: E402
from repro.workloads.wilos_programs import build_patterns  # noqa: E402

#: Largest-relation row count for the executor microbenchmarks.
DEFAULT_ROWS = 50_000

#: Timing repetitions; the best (minimum) run is reported.  Allocation-heavy
#: runs (50k output dicts) see multi-millisecond allocator-state noise, so
#: the minimum is taken over enough repetitions to converge.
REPEATS = 7


def build_benchmark_database(rows: int, execution_mode: str = None) -> Database:
    """A deterministic orders/customers database for the microbenchmarks."""
    database = Database(execution_mode=execution_mode)
    database.create_table(
        "customers",
        [
            Column("c_id", ColumnType.INT),
            Column("c_name", ColumnType.STRING, width=16),
            Column("c_tier", ColumnType.INT),
        ],
        primary_key="c_id",
    )
    database.create_table(
        "orders",
        [
            Column("o_id", ColumnType.INT),
            Column("o_c_id", ColumnType.INT),
            Column("o_total", ColumnType.FLOAT),
            Column("o_status", ColumnType.STRING, width=8),
        ],
        primary_key="o_id",
    )
    customers = max(rows // 10, 1)
    database.insert(
        "customers",
        (
            {"c_id": i, "c_name": f"customer-{i}", "c_tier": i % 5}
            for i in range(customers)
        ),
    )
    database.insert(
        "orders",
        (
            {
                "o_id": i,
                "o_c_id": i % customers,
                "o_total": float((i * 7919) % 1000),
                "o_status": "OPEN" if i % 3 else "DONE",
            }
            for i in range(rows)
        ),
    )
    database.analyze()
    return database


def executor_plans() -> dict[str, algebra.PlanNode]:
    """The microbenchmark plans: scan+filter, equi-joins, grouped aggregate."""
    scan_filter = algebra.Select(
        algebra.Scan("orders", "o"),
        BooleanOp(
            "and",
            (
                BinaryOp(">", ColumnRef("o_total", "o"), Literal(500.0)),
                BinaryOp("=", ColumnRef("o_status", "o"), Literal("OPEN")),
            ),
        ),
    )
    join = algebra.Join(
        algebra.Scan("orders", "o"),
        algebra.Scan("customers", "c"),
        BinaryOp("=", ColumnRef("o_c_id", "o"), ColumnRef("c_id", "c")),
    )
    # The headline join benchmark projects a few columns, as real queries
    # do; the compiled engine pipelines the projection through the join.
    # The full-width join (every bare and qualified column of both sides)
    # is tracked separately as hash_join_wide.
    hash_join = algebra.Project(
        join,
        (
            algebra.OutputColumn(ColumnRef("o_id", "o"), "o_id"),
            algebra.OutputColumn(ColumnRef("c_name", "c"), "c_name"),
            algebra.OutputColumn(ColumnRef("o_total", "o"), "o_total"),
        ),
    )
    aggregate = algebra.Aggregate(
        algebra.Scan("orders"),
        group_by=(ColumnRef("o_c_id"),),
        aggregates=(
            algebra.AggregateSpec("sum", ColumnRef("o_total"), "total"),
            algebra.AggregateSpec("count", None, "n"),
            algebra.AggregateSpec("avg", ColumnRef("o_total"), "avg_total"),
        ),
    )
    return {
        "scan_filter": scan_filter,
        "hash_join": hash_join,
        "hash_join_wide": join,
        "aggregate": aggregate,
    }


def _best_time(run: Callable[[], object], repeats: int = REPEATS) -> float:
    import gc

    best = float("inf")
    # Collect once up front, then keep the collector out of the timed
    # region (pyperf-style): allocation-heavy runs otherwise pay a noisy,
    # state-dependent share of generational GC passes.
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            run()
            best = min(best, time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


#: Plans also timed on the vectorized batch tier (entry name suffix
#: ``_vectorized``); ``hash_join_wide`` is the tier's headline number — the
#: row tiers are bounded there by per-row output-dict construction, which
#: vectorized execution defers to one late-materialization pass at the root.
VECTORIZED_PLANS = ("scan_filter", "hash_join_wide", "aggregate")


def bench_executor(rows: int) -> dict:
    """Time every microbenchmark plan in each execution mode.

    All plans run interpreted and compiled; the ``VECTORIZED_PLANS``
    additionally run on the vectorized tier.  Row-for-row equality across
    every mode is asserted as part of the run.
    """
    database = build_benchmark_database(rows)
    interpreted = Executor(database.tables, mode="interpreted")
    compiled = Executor(database.tables, mode="compiled")
    vectorized = Executor(database.tables, mode="vectorized")
    results: dict = {}
    for name, plan in executor_plans().items():
        reference = interpreted.execute(plan)
        fast = compiled.execute(plan)
        if reference != fast:
            raise AssertionError(
                f"compiled and interpreted results differ for {name!r}"
            )
        interpreted_s = _best_time(lambda: interpreted.execute(plan))
        compiled_s = _best_time(lambda: compiled.execute(plan))
        results[name] = {
            "output_rows": len(reference),
            "interpreted_seconds": interpreted_s,
            "compiled_seconds": compiled_s,
            "speedup": interpreted_s / compiled_s if compiled_s else None,
        }
        if name not in VECTORIZED_PLANS:
            continue
        batch = vectorized.execute(plan)
        if reference != batch:
            raise AssertionError(
                f"vectorized and interpreted results differ for {name!r}"
            )
        if vectorized.tier_counts["vectorized"] == 0:
            raise AssertionError(
                f"plan {name!r} fell back off the vectorized tier"
            )
        output_rows = len(reference)
        # Release the held result sets before timing: ~150k live dicts
        # otherwise skew the allocator against the timed runs.
        del reference, fast, batch
        vectorized_s = _best_time(lambda: vectorized.execute(plan))
        results[f"{name}_vectorized"] = {
            "output_rows": output_rows,
            "interpreted_seconds": interpreted_s,
            "compiled_seconds": compiled_s,
            "vectorized_seconds": vectorized_s,
            # Headline: vectorized over the interpreted baseline, with the
            # gain over the compiled row tier tracked alongside.
            "speedup": interpreted_s / vectorized_s if vectorized_s else None,
            "speedup_vs_compiled": (
                compiled_s / vectorized_s if vectorized_s else None
            ),
        }
        vectorized.tier_counts["vectorized"] = 0
    return results


def _interleaved_best(
    runners: dict[str, Callable[[], object]], repeats: int = REPEATS
) -> dict[str, float]:
    """Per-runner minimum over ``repeats`` round-robin rounds.

    Competing paths over the same data are timed alternately so allocator
    and cache-state drift hits them equally — sequential min-of runs can
    hand whichever path runs second a warmed allocator.
    """
    import gc

    best = {label: float("inf") for label in runners}
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for label, run in runners.items():
                started = time.perf_counter()
                run()
                best[label] = min(best[label], time.perf_counter() - started)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


#: Plans timed codegen-vs-kernel (both run on the vectorized tier).
CODEGEN_PLANS = ("scan_filter", "aggregate")


def bench_codegen(rows: int) -> dict:
    """Fused-pipeline codegen vs the batch-kernel vectorized path.

    Both paths run on the vectorized tier over identical tables: the
    *kernel* executor has codegen disabled (the ``REPRO_VECTOR_CODEGEN=0``
    escape hatch, applied directly), the *codegen* executor compiles the
    fused loops.  Row equality against the interpreted tier is asserted,
    as is that the codegen executor actually served every run from a
    compiled pipeline.  ``dict_filter_strings`` times a string-equality
    filter whose codegen compares dictionary codes, against the kernel
    path and against the same pipeline with strings stored boxed.
    """
    database = build_benchmark_database(rows)
    interpreted = Executor(database.tables, mode="interpreted")
    kernel = Executor(database.tables, mode="vectorized")
    kernel._vectorized.codegen_enabled = False
    codegen = Executor(database.tables, mode="vectorized")
    plans = executor_plans()
    results: dict = {}
    for name in CODEGEN_PLANS:
        plan = plans[name]
        reference = interpreted.execute(plan)
        if reference != kernel.execute(plan) or reference != codegen.execute(
            plan
        ):
            raise AssertionError(
                f"codegen / kernel / interpreted results differ for {name!r}"
            )
        output_rows = len(reference)
        del reference
        timings = _interleaved_best(
            {
                "kernel": lambda: kernel.execute(plan),
                "codegen": lambda: codegen.execute(plan),
            }
        )
        interpreted_s = _best_time(lambda: interpreted.execute(plan))
        results[f"{name}_codegen"] = {
            "output_rows": output_rows,
            "interpreted_seconds": interpreted_s,
            "kernel_seconds": timings["kernel"],
            "codegen_seconds": timings["codegen"],
            # Headline: the fused compiled loop over the batch-kernel path.
            "speedup_vs_kernel": timings["kernel"] / timings["codegen"],
            "speedup_vs_interpreted": interpreted_s / timings["codegen"],
        }
    if codegen._vectorized.codegen_executions == 0:
        raise AssertionError("codegen executor never took the codegen path")
    if codegen._vectorized.fallback_reasons.get("codegen_unsupported"):
        raise AssertionError("a benchmark plan was codegen-unsupported")
    if kernel._vectorized.codegen_executions:
        raise AssertionError("kernel baseline unexpectedly ran codegen")

    # -- dict_filter_strings: dictionary codes vs boxed strings ----------
    dict_plan = algebra.Select(
        algebra.Scan("orders", "o"),
        BinaryOp("=", ColumnRef("o_status", "o"), Literal("OPEN")),
    )
    boxed_database = build_benchmark_database(rows)
    boxed_database.table("orders").set_storage_mode("typed")  # strings boxed
    boxed = Executor(boxed_database.tables, mode="vectorized")
    reference = interpreted.execute(dict_plan)
    if reference != codegen.execute(dict_plan) or reference != boxed.execute(
        dict_plan
    ) or reference != kernel.execute(dict_plan):
        raise AssertionError("dict_filter_strings results differ across paths")
    if database.table("orders").column_encodings()["o_status"] != "dict":
        raise AssertionError("o_status is not dictionary-encoded")
    output_rows = len(reference)
    del reference
    timings = _interleaved_best(
        {
            "kernel": lambda: kernel.execute(dict_plan),
            "dict_codegen": lambda: codegen.execute(dict_plan),
            "boxed_codegen": lambda: boxed.execute(dict_plan),
        }
    )
    results["dict_filter_strings"] = {
        "output_rows": output_rows,
        "kernel_seconds": timings["kernel"],
        "dict_codegen_seconds": timings["dict_codegen"],
        "boxed_codegen_seconds": timings["boxed_codegen"],
        "speedup_vs_kernel": timings["kernel"] / timings["dict_codegen"],
        "speedup_vs_boxed": (
            timings["boxed_codegen"] / timings["dict_codegen"]
        ),
    }
    return results


#: Parameterized lookups per timed run of the prepared-statement benchmark.
LOOKUPS = 2_000


def bench_prepared_point_lookup(rows: int) -> dict:
    """Repeated parameterized point lookups: prepared vs. unprepared.

    The *unprepared* runner reproduces the pre-prepared-statement client
    stack exactly: every call parses the SQL text to execute it, parses it a
    second time to estimate it (as ``SimulatedConnection.execute_query``
    used to), and runs the bound plan through the generic executor.  The
    *prepared* runner prepares the statement once and replays it with fresh
    parameters, hitting the cached plan, the plan-keyed estimate, and the
    index-backed point-lookup fast path.
    """
    from repro.db.sqlparser import bind_parameters, parse_sql  # noqa: E402

    # Pinned to the compiled tier: the unprepared runner reproduces the
    # historical (pre-vectorized) client stack, and the prepared runner's
    # index-backed fast path never enters the executor anyway.
    database = build_benchmark_database(rows, execution_mode="compiled")
    customers = max(rows // 10, 1)
    sql = "select * from customers where c_id = ?"
    keys = [(i * 7919) % customers for i in range(LOOKUPS)]

    def unprepared() -> int:
        fetched = 0
        for key in keys:
            plan = bind_parameters(parse_sql(sql), (key,))
            result = database.execute_plan(plan, sql=sql)
            estimate_plan = bind_parameters(parse_sql(sql), (key,))
            database.estimate_plan(estimate_plan)
            fetched += len(result.rows)
        return fetched

    statement = database.prepare(sql)

    def prepared() -> int:
        fetched = 0
        for key in keys:
            result = statement.execute((key,))
            statement.estimate()
            fetched += len(result.rows)
        return fetched

    for key in keys[:25]:
        reference = database.execute_plan(
            bind_parameters(parse_sql(sql), (key,)), sql=sql
        )
        fast = statement.execute((key,))
        if reference.rows != fast.rows:
            raise AssertionError(
                f"prepared and unprepared lookup results differ for key {key}"
            )

    unprepared_s = _best_time(unprepared)
    prepared_s = _best_time(prepared)
    return {
        "lookups": len(keys),
        "table_rows": customers,
        "unprepared_seconds": unprepared_s,
        "prepared_seconds": prepared_s,
        "speedup": unprepared_s / prepared_s if prepared_s else None,
    }


#: Parameter tuples per executemany batch in the pipelining benchmark.
BATCH_TUPLES = 1_000


def bench_pipelined_executemany(rows: int) -> dict:
    """1k-tuple parameterized executemany: per-tuple round trips vs pipeline.

    The *per-tuple* runner reproduces the pre-pipeline driver exactly: the
    statement is prepared once but every parameter tuple pays its own
    network round trip.  The *pipelined* runner is today's
    ``Cursor.executemany``: the same tuples ship as one batch in a single
    round trip (``NetworkConditions.pipelined_time``).  Both run on the
    paper's slow-remote network; the headline number is the **virtual-time**
    speedup, with wall-clock recorded alongside.
    """
    from repro.net.connection import SimulatedConnection
    from repro.net.network import SLOW_REMOTE

    database = build_benchmark_database(rows)
    customers = max(rows // 10, 1)
    sql = "select * from customers where c_id = ?"
    tuples = [((i * 7919) % customers,) for i in range(BATCH_TUPLES)]

    per_tuple_conn = SimulatedConnection(database, SLOW_REMOTE)
    statement = per_tuple_conn.prepare(sql)

    def per_tuple() -> list:
        per_tuple_conn.reset()
        cursor = per_tuple_conn.cursor()
        last = None
        for params in tuples:
            last = cursor.execute_prepared(statement, params).fetchall()
        return last

    pipelined_conn = SimulatedConnection(database, SLOW_REMOTE)

    def pipelined() -> list:
        pipelined_conn.reset()
        cursor = pipelined_conn.cursor()
        cursor.executemany(sql, tuples)
        return cursor.fetchall()

    if per_tuple() != pipelined():
        raise AssertionError(
            "pipelined and per-tuple executemany results differ"
        )
    per_tuple_wall = _best_time(per_tuple)
    per_tuple_virtual = per_tuple_conn.elapsed
    per_tuple_trips = per_tuple_conn.stats.round_trips
    pipelined_wall = _best_time(pipelined)
    pipelined_virtual = pipelined_conn.elapsed
    pipelined_trips = pipelined_conn.stats.round_trips
    return {
        "tuples": len(tuples),
        "network": SLOW_REMOTE.name,
        "per_tuple_round_trips": per_tuple_trips,
        "pipelined_round_trips": pipelined_trips,
        "per_tuple_virtual_seconds": per_tuple_virtual,
        "pipelined_virtual_seconds": pipelined_virtual,
        "virtual_speedup": (
            per_tuple_virtual / pipelined_virtual if pipelined_virtual else None
        ),
        "per_tuple_wall_seconds": per_tuple_wall,
        "pipelined_wall_seconds": pipelined_wall,
        "wall_speedup": (
            per_tuple_wall / pipelined_wall if pipelined_wall else None
        ),
    }


#: Concurrent clients / lookups per client in the async benchmark.
ASYNC_CLIENTS = 8
ASYNC_LOOKUPS = 25


def bench_async_concurrent_clients(rows: int) -> dict:
    """N clients x K point lookups: sequential vs overlapping async clients.

    Sequential execution charges each client's round trips back to back;
    the async engine's shared clock lets the N clients' in-flight requests
    overlap, so the fleet pays roughly one client's latency.  Virtual time
    is the headline (deterministic); wall-clock covers the asyncio harness
    overhead.
    """
    import asyncio

    from repro.api import connect
    from repro.net.network import SLOW_REMOTE

    database = build_benchmark_database(rows)
    customers = max(rows // 10, 1)
    engine = connect(database=database, network=SLOW_REMOTE)
    sql = "select * from customers where c_id = ?"
    keys = [(i * 7919) % customers for i in range(ASYNC_LOOKUPS)]

    def sequential() -> float:
        connections = [engine.connect() for _ in range(ASYNC_CLIENTS)]
        statement = engine.prepare(sql)
        for connection in connections:
            for key in keys:
                connection.execute_prepared(statement, (key,))
        return sum(connection.elapsed for connection in connections)

    def concurrent() -> float:
        aengine = engine.aio()

        async def client(connection) -> None:
            statement = engine.prepare(sql)
            for key in keys:
                await connection.execute_prepared(statement, (key,))

        async def fleet() -> None:
            connections = [aengine.connect() for _ in range(ASYNC_CLIENTS)]
            await asyncio.gather(
                *[client(connection) for connection in connections]
            )

        asyncio.run(fleet())
        return aengine.elapsed

    started = time.perf_counter()
    sequential_virtual = sequential()
    sequential_wall = time.perf_counter() - started
    started = time.perf_counter()
    concurrent_virtual = concurrent()
    concurrent_wall = time.perf_counter() - started
    return {
        "clients": ASYNC_CLIENTS,
        "lookups_per_client": ASYNC_LOOKUPS,
        "network": SLOW_REMOTE.name,
        "sequential_virtual_seconds": sequential_virtual,
        "concurrent_virtual_seconds": concurrent_virtual,
        "overlap_speedup": (
            sequential_virtual / concurrent_virtual
            if concurrent_virtual
            else None
        ),
        "sequential_wall_seconds": sequential_wall,
        "concurrent_wall_seconds": concurrent_wall,
    }


#: Shard partitions used by the sharded-execution benchmarks.
SHARD_COUNT = 8

#: Point lookups per timed run of the sharded-routing benchmark.
SHARDED_LOOKUPS = 200


def _build_sharded_pair(rows: int):
    """Identically-populated (sharded, unsharded) benchmark databases."""
    sharded = build_benchmark_database(rows)
    sharded.shard_table("customers", "c_id", SHARD_COUNT)
    sharded.shard_table("orders", "o_c_id", SHARD_COUNT)
    sharded.analyze()
    unsharded = build_benchmark_database(rows)
    return sharded, unsharded


def _normalized(rows: list) -> list:
    return sorted(
        rows, key=lambda row: [(k, repr(v)) for k, v in sorted(row.items())]
    )


def bench_sharded(rows: int) -> dict:
    """Sharded execution: routed vs scatter-gather, and sharded overheads.

    * ``sharded_point_lookup`` — the same shard-key point predicate executed
      through the router's **single-shard routed** class (one partition does
      the work) and through forced **scatter-gather** (every partition
      executes and a gather node concatenates).  Routing must win by at
      least the shard count — it scans 1/N of the rows and pays one
      pipeline instead of N.
    * ``sharded_scan_filter`` — a non-shard-key filter, which *must*
      scatter, timed against the same plan on an unsharded database
      (the cost of distribution when no pruning is possible).
    * ``sharded_aggregate`` — a grouped aggregate executed as per-shard
      partial aggregates merged at the gather node, against the unsharded
      single-pass aggregation.  Integer aggregates, so results are asserted
      exactly equal.
    """
    from repro.db.expressions import ParameterSlot

    sharded, unsharded = _build_sharded_pair(rows)
    router = sharded._router
    customers = max(rows // 10, 1)

    # -- sharded_point_lookup: routed vs forced scatter-gather -----------
    # The *routed* runner is the engine's real point-lookup path: a prepared
    # statement whose fast path probes only the secondary index of the shard
    # the key hashes to.  The *routed executor* runner is the generic
    # single-shard routed class (a vectorized filter over one partition, no
    # index).  The *scatter* runner forces the same plan through
    # scatter-gather: every partition executes and a gather concatenates.
    slots: list = [None]
    lookup_plan = algebra.Select(
        algebra.Scan("customers", "c"),
        BinaryOp("=", ColumnRef("c_id", "c"), ParameterSlot(0, slots)),
    )
    sql = "select * from customers where c_id = ?"
    statement = sharded.prepare(sql)
    if statement.point_lookup is None:
        raise AssertionError("prepared lookup lost its fast path")
    keys = [(i * 7919) % customers for i in range(SHARDED_LOOKUPS)]

    def routed() -> int:
        fetched = 0
        for key in keys:
            fetched += len(statement.execute((key,)).rows)
        return fetched

    def routed_executor() -> int:
        fetched = 0
        for key in keys:
            slots[0] = key
            fetched += len(sharded._executor.execute(lookup_plan))
        return fetched

    names = frozenset({"customers"})

    def scattered() -> int:
        fetched = 0
        for key in keys:
            slots[0] = key
            fetched += len(router._scatter(lookup_plan, names, SHARD_COUNT))
        return fetched

    slots[0] = keys[0]
    routed_rows = statement.execute((keys[0],)).rows
    executor_rows = sharded._executor.execute(lookup_plan)
    scatter_rows = router._scatter(lookup_plan, names, SHARD_COUNT)
    # The prepared statement scans without an alias while the hand-built
    # plan aliases the table: compare on the bare-column view.
    alias_free = lambda rows: _normalized(  # noqa: E731
        [{k: v for k, v in row.items() if "." not in k} for row in rows]
    )
    if not (
        alias_free(routed_rows)
        == alias_free(executor_rows)
        == alias_free(scatter_rows)
    ):
        raise AssertionError("routed and scatter-gather lookups differ")
    if router.stats.routed == 0:
        raise AssertionError("point lookup did not route to a single shard")
    routed_s = _best_time(routed)
    routed_executor_s = _best_time(routed_executor)
    scatter_s = _best_time(scattered)
    point_lookup = {
        "lookups": len(keys),
        "shards": SHARD_COUNT,
        "table_rows": customers,
        "routed_seconds": routed_s,
        "routed_executor_seconds": routed_executor_s,
        "scatter_seconds": scatter_s,
        # Headline: the engine's routed point-lookup path vs forcing the
        # same statement through every shard.
        "speedup": scatter_s / routed_s if routed_s else None,
        "speedup_executor_routed": (
            scatter_s / routed_executor_s if routed_executor_s else None
        ),
    }

    # -- sharded_scan_filter: scatter-gather vs unsharded -----------------
    filter_plan = executor_plans()["scan_filter"]
    sharded_rows = sharded._executor.execute(filter_plan)
    unsharded_rows = unsharded._executor.execute(filter_plan)
    if _normalized(sharded_rows) != _normalized(unsharded_rows):
        raise AssertionError("sharded and unsharded scan_filter results differ")
    scatter_before = router.stats.scatter
    sharded._executor.execute(filter_plan)
    if router.stats.scatter == scatter_before:
        raise AssertionError("scan_filter did not scatter-gather")
    output_rows = len(sharded_rows)
    del sharded_rows, unsharded_rows
    sharded_filter_s = _best_time(lambda: sharded._executor.execute(filter_plan))
    unsharded_filter_s = _best_time(
        lambda: unsharded._executor.execute(filter_plan)
    )
    scan_filter = {
        "output_rows": output_rows,
        "shards": SHARD_COUNT,
        "unsharded_seconds": unsharded_filter_s,
        "sharded_seconds": sharded_filter_s,
        "relative_overhead": (
            sharded_filter_s / unsharded_filter_s if unsharded_filter_s else None
        ),
    }

    # -- sharded_aggregate: partial aggregates merged at the gather -------
    aggregate_plan = algebra.Aggregate(
        algebra.Scan("orders"),
        group_by=(ColumnRef("o_c_id"),),
        aggregates=(
            algebra.AggregateSpec("count", None, "n"),
            algebra.AggregateSpec("sum", ColumnRef("o_id"), "total"),
            algebra.AggregateSpec("min", ColumnRef("o_id"), "low"),
            algebra.AggregateSpec("max", ColumnRef("o_id"), "high"),
        ),
    )
    sharded_rows = sharded._executor.execute(aggregate_plan)
    unsharded_rows = unsharded._executor.execute(aggregate_plan)
    # Integer partials merge exactly; only group order may differ.
    if _normalized(sharded_rows) != _normalized(unsharded_rows):
        raise AssertionError("sharded and unsharded aggregates differ")
    local_before = router.stats.local
    sharded._executor.execute(aggregate_plan)
    if router.stats.local == local_before:
        raise AssertionError("aggregate did not run as per-shard partials")
    groups = len(sharded_rows)
    del sharded_rows, unsharded_rows
    sharded_agg_s = _best_time(lambda: sharded._executor.execute(aggregate_plan))
    unsharded_agg_s = _best_time(
        lambda: unsharded._executor.execute(aggregate_plan)
    )
    aggregate = {
        "groups": groups,
        "shards": SHARD_COUNT,
        "unsharded_seconds": unsharded_agg_s,
        "sharded_seconds": sharded_agg_s,
        "relative_overhead": (
            sharded_agg_s / unsharded_agg_s if unsharded_agg_s else None
        ),
    }

    return {
        "sharded_point_lookup": point_lookup,
        "sharded_scan_filter": scan_filter,
        "sharded_aggregate": aggregate,
    }


def bench_parallel(rows: int) -> dict:
    """Parallel scatter-gather: serial scatter vs the worker pool at 8 shards.

    * ``parallel_scan_filter`` — the scatter-mandatory filter of
      ``sharded_scan_filter``, executed serially and on the worker pool;
      rows are asserted identical (parallel preserves shard gather order
      exactly), and both are compared against the unsharded baseline.
    * ``parallel_aggregate`` — the per-shard partial aggregate of
      ``sharded_aggregate``, same protocol.

    ``relative_overhead`` is pool-vs-unsharded — the number the sharding
    tax becomes a speedup on (< 1.0 on a multi-core runner; on a single
    core the thread pool can only break even minus coordination cost).
    ``BENCH_ENGINE_WORKERS`` sizes the pool (default: CPU count) and
    ``BENCH_ENGINE_PARALLEL_MODE`` picks ``thread`` (default) or
    ``process``.
    """
    sharded, unsharded = _build_sharded_pair(rows)
    workers = int(os.environ.get("BENCH_ENGINE_WORKERS", "0")) or (
        os.cpu_count() or 1
    )
    mode = os.environ.get("BENCH_ENGINE_PARALLEL_MODE", "thread")
    aggregate_plan = algebra.Aggregate(
        algebra.Scan("orders"),
        group_by=(ColumnRef("o_c_id"),),
        aggregates=(
            algebra.AggregateSpec("count", None, "n"),
            algebra.AggregateSpec("sum", ColumnRef("o_id"), "total"),
            algebra.AggregateSpec("min", ColumnRef("o_id"), "low"),
            algebra.AggregateSpec("max", ColumnRef("o_id"), "high"),
        ),
    )
    entries: dict = {}
    for name, plan in (
        ("parallel_scan_filter", executor_plans()["scan_filter"]),
        ("parallel_aggregate", aggregate_plan),
    ):
        sharded.set_parallel(mode="serial")
        serial_rows = sharded._executor.execute(plan)
        unsharded_rows = unsharded._executor.execute(plan)
        if _normalized(serial_rows) != _normalized(unsharded_rows):
            raise AssertionError(f"{name}: sharded and unsharded rows differ")
        serial_s = _best_time(lambda plan=plan: sharded._executor.execute(plan))
        sharded.set_parallel(workers, mode)
        parallel_rows = sharded._executor.execute(plan)
        if parallel_rows != serial_rows:
            raise AssertionError(
                f"{name}: parallel scatter is not row-identical to serial"
            )
        parallel_s = _best_time(
            lambda plan=plan: sharded._executor.execute(plan)
        )
        unsharded_s = _best_time(
            lambda plan=plan: unsharded._executor.execute(plan)
        )
        entries[name] = {
            "output_rows": len(serial_rows),
            "shards": SHARD_COUNT,
            "workers": workers,
            "mode": mode,
            "unsharded_seconds": unsharded_s,
            "serial_seconds": serial_s,
            "parallel_seconds": parallel_s,
            "speedup_vs_serial": (
                serial_s / parallel_s if parallel_s else None
            ),
            "relative_overhead": (
                parallel_s / unsharded_s if unsharded_s else None
            ),
        }
    sharded.close_parallel()
    return entries


#: Rows inserted (and then updated) per timed run of the WAL benchmark.
WAL_BENCH_UPDATES = 5

#: Operations / fault rate / seed for the fault-retry convergence benchmark.
FAULT_BENCH_OPS = 300
FAULT_BENCH_RATE = 0.1
FAULT_BENCH_SEED = 42


def bench_wal_overhead(rows: int) -> dict:
    """Write path with and without the write-ahead log.

    Each timed run builds a fresh table, bulk-inserts it, and runs a few
    predicate UPDATEs — once on a plain database and once with the WAL
    enabled (every write logged as a typed record plus a commit marker
    before it applies).  The headline is the relative overhead of
    durability on the write path; recovery equivalence (replaying the log
    reproduces the live state row-for-row) is asserted as part of the run.
    """
    count = max(rows // 5, 1_000)
    payload = [
        {"e_id": i, "e_grp": i % 10, "e_val": float((i * 7919) % 1000)}
        for i in range(count)
    ]
    columns = [
        Column("e_id", ColumnType.INT),
        Column("e_grp", ColumnType.INT),
        Column("e_val", ColumnType.FLOAT),
    ]

    def run(wal: bool) -> Database:
        database = Database(wal=wal)
        database.create_table("events", columns, primary_key="e_id")
        database.insert("events", payload)
        for i in range(WAL_BENCH_UPDATES):
            database.update_table(
                "events",
                lambda row, i=i: row["e_grp"] == i,
                {"e_val": float(i)},
            )
        return database

    unlogged_s = _best_time(lambda: run(False), repeats=3)
    logged_s = _best_time(lambda: run(True), repeats=3)

    database = run(True)
    recovered = Database.recover(database.wal)
    live_rows = [dict(r) for r in database.table("events").rows]
    recovered_rows = [dict(r) for r in recovered.table("events").rows]
    if live_rows != recovered_rows:
        raise AssertionError("WAL recovery diverged from the live database")
    stats = database.wal.stats
    return {
        "rows": count,
        "updates": WAL_BENCH_UPDATES,
        "unlogged_seconds": unlogged_s,
        "logged_seconds": logged_s,
        "relative_overhead": (
            logged_s / unlogged_s if unlogged_s else None
        ),
        "wal_records": stats.records,
        "wal_rows_logged": stats.rows_logged,
        "group_commit": _bench_group_commit(rows),
    }


#: Transactions / flush cost for the group-commit delta measurement.
GROUP_COMMITS = 20
GROUP_FLUSH_SECONDS = 0.05
GROUP_WINDOW = 2.0


def _bench_group_commit(rows: int) -> dict:
    """Virtual-time delta of group commit on a commit-heavy workload.

    ``GROUP_COMMITS`` sequential BEGIN/UPDATE/COMMIT transactions over the
    slow-remote network, once with every COMMIT paying the full WAL flush
    (``group_window=0``) and once with commits inside a window piggybacking
    on the last flush (``wal_group_commit`` counter).  The grouped run must
    be cheaper in virtual time, by up to ``(N-1) * flush_seconds``.
    """
    from repro.api.engine import Engine
    from repro.net.network import SLOW_REMOTE

    count = max(rows // 50, 200)

    def run(group_window: float) -> tuple[float, int]:
        engine = (
            Engine.builder()
            .database(build_benchmark_database(count))
            .network(SLOW_REMOTE)
            .wal(flush_seconds=GROUP_FLUSH_SECONDS, group_window=group_window)
            .build()
        )
        connection = engine.connect()
        for i in range(GROUP_COMMITS):
            connection.begin()
            connection.execute_update(
                f"update customers set c_tier = {i % 5} where c_id = 0"
            )
            connection.commit()
        return connection.elapsed, engine.database.wal.stats.group_commits

    ungrouped_virtual, _ = run(0.0)
    grouped_virtual, grouped = run(GROUP_WINDOW)
    if grouped == 0:
        raise AssertionError("group commit never batched a flush")
    if grouped_virtual >= ungrouped_virtual:
        raise AssertionError("group commit did not reduce virtual commit time")
    return {
        "transactions": GROUP_COMMITS,
        "flush_seconds": GROUP_FLUSH_SECONDS,
        "group_window": GROUP_WINDOW,
        "ungrouped_virtual_seconds": ungrouped_virtual,
        "grouped_virtual_seconds": grouped_virtual,
        "flushes_saved": grouped,
        "virtual_seconds_saved": ungrouped_virtual - grouped_virtual,
    }


def bench_fault_retry_convergence(rows: int) -> dict:
    """Seeded fault-injected workload vs the same workload fault-free.

    The faulty engine injects deterministic timeouts/drops/transient errors
    at ``FAULT_BENCH_RATE`` and retries them with capped exponential
    backoff; faults that exhaust the retry budget are re-issued at the
    application level (safe: request-path faults never executed
    server-side).  Row-for-row equality of every query result and of the
    final table state against the fault-free run is asserted — the
    convergence property — and the extra *virtual* time the faults cost is
    the headline number.
    """
    from repro.api.engine import Engine
    from repro.net.faults import FaultError, RetryPolicy
    from repro.net.network import SLOW_REMOTE

    customers = max(rows // 10, 1)
    sql = "select * from customers where c_id = ?"

    def run(engine: Engine, *, reissue: bool) -> tuple:
        connection = engine.connect()
        statement = connection.prepare(sql)
        outputs = []
        for i in range(FAULT_BENCH_OPS):
            key = (i * 7919) % customers
            if i % 5 == 4:
                op = lambda: connection.execute_update(
                    f"update customers set c_tier = {i % 5} "
                    f"where c_id = {key}"
                )
            else:
                op = lambda: connection.execute_prepared(
                    statement, (key,)
                ).rows
            while True:
                try:
                    outputs.append(op())
                    break
                except FaultError:
                    if not reissue:
                        raise
        return outputs, connection.elapsed

    clean_engine = (
        Engine.builder()
        .database(build_benchmark_database(rows))
        .network(SLOW_REMOTE)
        .build()
    )
    faulty_engine = (
        Engine.builder()
        .database(build_benchmark_database(rows))
        .network(SLOW_REMOTE)
        .fault_rate(FAULT_BENCH_RATE, seed=FAULT_BENCH_SEED)
        .retries(RetryPolicy(max_attempts=3, seed=FAULT_BENCH_SEED))
        .build()
    )

    started = time.perf_counter()
    clean_out, clean_virtual = run(clean_engine, reissue=False)
    clean_wall = time.perf_counter() - started
    started = time.perf_counter()
    faulty_out, faulty_virtual = run(faulty_engine, reissue=True)
    faulty_wall = time.perf_counter() - started

    if clean_out != faulty_out:
        raise AssertionError(
            "fault-injected run diverged from the fault-free run"
        )
    clean_rows = [
        dict(r) for r in clean_engine.database.table("customers").rows
    ]
    faulty_rows = [
        dict(r) for r in faulty_engine.database.table("customers").rows
    ]
    if clean_rows != faulty_rows:
        raise AssertionError(
            "final table state diverged between faulty and fault-free runs"
        )
    stats = faulty_engine.faults.stats
    if stats.injected != stats.retries + stats.exhausted + stats.ambiguous:
        raise AssertionError("a fault was neither retried nor surfaced")
    return {
        "operations": FAULT_BENCH_OPS,
        "fault_rate": FAULT_BENCH_RATE,
        "seed": FAULT_BENCH_SEED,
        "network": SLOW_REMOTE.name,
        "faults_injected": stats.injected,
        "retries": stats.retries,
        "reissued_after_exhaustion": stats.exhausted,
        "clean_virtual_seconds": clean_virtual,
        "faulty_virtual_seconds": faulty_virtual,
        "fault_virtual_overhead": (
            faulty_virtual / clean_virtual if clean_virtual else None
        ),
        "clean_wall_seconds": clean_wall,
        "faulty_wall_seconds": faulty_wall,
    }


#: Operations / offered rate / mix for the MVCC reader-writer benchmark.
MVCC_LOADGEN_OPS = 150
MVCC_LOADGEN_RATE = 2.0
MVCC_READ_FRACTION = 0.7

#: Sentinel tier value (outside the generator's 0..4 range) for the
#: snapshot-consistency check.
MVCC_SENTINEL_TIER = 7


def bench_mvcc_reader_writer(rows: int) -> dict:
    """Open-loop readers against an MVCC engine, write-free vs mixed.

    The baseline run is 100% point reads; the mixed run interleaves
    transactional UPDATEs (first-committer-wins conflicts tolerated and
    counted).  Under MVCC, readers outside a transaction execute against
    the latest committed snapshot and never wait on writers, so mixed read
    p50 must stay within 1.2x of the write-free baseline — asserted, along
    with a snapshot opened before a committed write still seeing the old
    rows.
    """
    from repro.api.engine import Engine
    from repro.net.network import SLOW_REMOTE
    from repro.workloads.loadgen import OpenLoopLoadGenerator

    database = build_benchmark_database(rows)
    customers = max(rows // 10, 1)
    engine = (
        Engine.builder()
        .database(database)
        .network(SLOW_REMOTE)
        .mvcc()
        .build()
    )
    read_sql = "select * from customers where c_id = ?"

    def read_params(rng):
        return (rng.randrange(customers),)

    baseline = OpenLoopLoadGenerator(
        engine.connect(),
        rate=MVCC_LOADGEN_RATE,
        operations=MVCC_LOADGEN_OPS,
        read_sql=read_sql,
        read_params=read_params,
        seed=11,
    ).run()

    # Snapshot-consistency probe: open a snapshot, commit a write the
    # mixed run will not overwrite (its writes avoid key 0), and verify
    # at the end that the snapshot still sees the pre-write row.
    original = engine.connect().execute_query(read_sql, (0,)).rows[0]["c_tier"]
    snapshot = database.snapshot()
    writer = engine.connect()
    writer.run_transaction(
        lambda c: c.execute_update(
            f"update customers set c_tier = {MVCC_SENTINEL_TIER} "
            f"where c_id = 0"
        )
    )

    def write_params(rng):
        # Keys 1.. only: key 0 carries the snapshot sentinel.
        return (rng.randrange(5), rng.randrange(1, max(customers, 2)))

    mixed = OpenLoopLoadGenerator(
        engine.connect(),
        rate=MVCC_LOADGEN_RATE,
        operations=MVCC_LOADGEN_OPS,
        read_sql=read_sql,
        read_params=read_params,
        write_sql="update customers set c_tier = ? where c_id = ?",
        write_params=write_params,
        read_fraction=MVCC_READ_FRACTION,
        seed=13,
        write_transaction=True,
    ).run()

    snapshot_value = snapshot.execute(read_sql, (0,)).rows[0]["c_tier"]
    live_value = engine.connect().execute_query(read_sql, (0,)).rows[0][
        "c_tier"
    ]
    snapshot.close()
    if snapshot_value != original or live_value != MVCC_SENTINEL_TIER:
        raise AssertionError(
            "snapshot visibility broke: snapshot saw "
            f"{snapshot_value!r} (expected {original!r}), live saw "
            f"{live_value!r} (expected {MVCC_SENTINEL_TIER!r})"
        )
    ratio = (
        mixed.read_latency.p50 / baseline.read_latency.p50
        if baseline.read_latency.p50
        else None
    )
    if ratio is None or ratio > 1.2:
        raise AssertionError(
            f"snapshot readers serialized behind writers: mixed read p50 is "
            f"{ratio}x the write-free baseline (limit 1.2x)"
        )
    mvcc_stats = database.mvcc_stats()
    return {
        "operations": MVCC_LOADGEN_OPS,
        "offered_rate": MVCC_LOADGEN_RATE,
        "read_fraction": MVCC_READ_FRACTION,
        "network": SLOW_REMOTE.name,
        "baseline_read": baseline.read_latency.as_dict(),
        "mixed_read": mixed.read_latency.as_dict(),
        "mixed_write": mixed.write_latency.as_dict(),
        "read_p50_ratio": ratio,
        "mixed_throughput": mixed.throughput,
        "write_conflicts": mixed.conflicts,
        "snapshot_consistent": True,
        "mvcc": {
            key: mvcc_stats[key]
            for key in (
                "versions_created",
                "versions_reclaimed",
                "snapshots_taken",
                "write_conflicts",
            )
        },
    }


#: Concurrency limit / operations per rate for the admission benchmark.
ADMISSION_LIMIT = 4
ADMISSION_OPS = 150


def bench_admission_open_loop(rows: int) -> dict:
    """Latency percentiles at 0.5x / 1x / 2x an admission-limited capacity.

    The server's capacity is ``limit / service_time`` (service time probed
    without admission).  Below capacity, latency sits at the service time;
    past it, the open-loop queue grows without bound — the knee.  Asserted:
    the 2x run queues and its p95 clearly exceeds the 0.5x run's.
    """
    from repro.api.engine import Engine
    from repro.net.network import SLOW_REMOTE
    from repro.workloads.loadgen import OpenLoopLoadGenerator

    database = build_benchmark_database(rows)
    customers = max(rows // 10, 1)
    read_sql = "select * from customers where c_id = ?"

    def read_params(rng):
        return (rng.randrange(customers),)

    probe_engine = (
        Engine.builder().database(database).network(SLOW_REMOTE).build()
    )
    probe = probe_engine.connect()
    _, service_seconds = probe._with_faults(
        "query",
        lambda: probe._measure_prepared(probe.prepare(read_sql), (0,)),
        idempotent=True,
    )
    capacity = ADMISSION_LIMIT / service_seconds

    runs: dict = {}
    for label, multiplier in (("0.5x", 0.5), ("1x", 1.0), ("2x", 2.0)):
        # A fresh engine per rate: admission slot bookkeeping must not
        # leak between runs.
        engine = (
            Engine.builder()
            .database(database)
            .network(SLOW_REMOTE)
            .admission(ADMISSION_LIMIT)
            .build()
        )
        report = OpenLoopLoadGenerator(
            engine.connect(),
            rate=capacity * multiplier,
            operations=ADMISSION_OPS,
            read_sql=read_sql,
            read_params=read_params,
            seed=29,
        ).run()
        admission = engine.admission.stats
        runs[label] = {
            "offered_rate": capacity * multiplier,
            "throughput": report.throughput,
            "p50": report.latency.p50,
            "p95": report.latency.p95,
            "p99": report.latency.p99,
            "queued": admission.queued,
            "queue_seconds": admission.queue_seconds,
            "peak_in_flight": admission.peak_in_flight,
        }
    if runs["2x"]["queued"] == 0:
        raise AssertionError("overload run never queued at the limit")
    knee = (
        runs["2x"]["p95"] / runs["0.5x"]["p95"]
        if runs["0.5x"]["p95"]
        else None
    )
    if knee is None or knee < 1.5:
        raise AssertionError(
            f"queueing knee not visible: overload p95 is only {knee}x the "
            f"underload p95"
        )
    return {
        "limit": ADMISSION_LIMIT,
        "operations_per_rate": ADMISSION_OPS,
        "network": SLOW_REMOTE.name,
        "service_seconds": service_seconds,
        "capacity_ops_per_second": capacity,
        "knee_p95_ratio": knee,
        "runs": runs,
    }


#: Queries per timed run of the tracing-overhead benchmark.
TRACING_QUERIES = 10

#: Maximum tolerated traced/untraced wall-time ratio (plus timing epsilon).
TRACING_OVERHEAD_LIMIT = 1.05


def bench_tracing_overhead(rows: int) -> dict:
    """Cost of structured tracing on the vectorized scan_filter query.

    The scan_filter predicate (the ``scan_filter_vectorized`` microbenchmark
    shape, as SQL) runs through the full connection path three ways: with no
    tracer configured, with a tracer configured but disabled, and with
    tracing enabled recording one multi-span trace per statement.  Enabled
    tracing must stay within ``TRACING_OVERHEAD_LIMIT`` (5%) of the
    untraced wall time — the per-query work is a handful of span objects
    against a multi-thousand-row scan — and a disabled tracer must be free
    (one attribute check per request).  Both bounds are asserted.
    """
    from repro.net.connection import SimulatedConnection
    from repro.net.network import FAST_LOCAL
    from repro.obs.trace import Tracer

    database = build_benchmark_database(rows)
    sql = "select * from orders where o_total > 500.0 and o_status = 'OPEN'"

    def make_runner(tracer):
        connection = SimulatedConnection(database, FAST_LOCAL, tracer=tracer)
        statement = connection.prepare(sql)

        def run() -> int:
            fetched = 0
            for _ in range(TRACING_QUERIES):
                fetched += len(connection.execute_prepared(statement).rows)
            return fetched

        return run

    untraced_run = make_runner(None)
    disabled_run = make_runner(Tracer(enabled=False))
    tracer = Tracer(max_traces=64)
    traced_run = make_runner(tracer)

    output_rows = untraced_run() // TRACING_QUERIES
    if traced_run() // TRACING_QUERIES != output_rows:
        raise AssertionError("traced and untraced results differ")
    # The traced runner must actually have recorded vectorized executions
    # with sound span accounting — otherwise the ratio measures nothing.
    if not tracer.traces:
        raise AssertionError("tracing recorded no traces")
    last = tracer.traces[-1]
    last.check_accounting()
    execute_span = last.find("execute")
    if execute_span is None or execute_span.attributes.get("tier") != "vectorized":
        raise AssertionError(
            f"traced query did not run vectorized: {last.as_dict()}"
        )

    # Interleave the three variants round-robin so allocator and cache
    # state drift hits them equally; per-variant minimum over the rounds.
    import gc

    timings = {"untraced": float("inf"), "disabled": float("inf"), "traced": float("inf")}
    runners = (
        ("untraced", untraced_run),
        ("disabled", disabled_run),
        ("traced", traced_run),
    )
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(REPEATS * 2):
            for label, run in runners:
                started = time.perf_counter()
                run()
                timings[label] = min(
                    timings[label], time.perf_counter() - started
                )
    finally:
        if gc_was_enabled:
            gc.enable()
    untraced_s = timings["untraced"]
    disabled_s = timings["disabled"]
    traced_s = timings["traced"]
    epsilon = 1e-4
    if traced_s > untraced_s * TRACING_OVERHEAD_LIMIT + epsilon:
        raise AssertionError(
            f"tracing overhead {traced_s / untraced_s:.3f}x exceeds "
            f"{TRACING_OVERHEAD_LIMIT}x"
        )
    if disabled_s > untraced_s * TRACING_OVERHEAD_LIMIT + epsilon:
        raise AssertionError(
            f"disabled tracer is not free: {disabled_s / untraced_s:.3f}x"
        )
    return {
        "queries": TRACING_QUERIES,
        "output_rows": output_rows,
        "untraced_seconds": untraced_s,
        "disabled_seconds": disabled_s,
        "traced_seconds": traced_s,
        "disabled_ratio": disabled_s / untraced_s if untraced_s else None,
        "traced_ratio": traced_s / untraced_s if untraced_s else None,
        "limit": TRACING_OVERHEAD_LIMIT,
    }


def bench_optimizer(wilos_scale: int = 2_000) -> dict:
    """End-to-end ``optimize()`` wall-clock on the Fig. 13 / Wilos workloads."""
    parameters = CostParameters.for_network(FAST_LOCAL)
    per_program: dict[str, float] = {}

    orders_db = tpcds.build_orders_database(num_orders=1_000, num_customers=500)
    registry = tpcds.build_registry()

    def run_p0():
        optimizer = CobraOptimizer(orders_db, parameters, registry=registry)
        return optimizer.optimize(P0_SOURCE)

    per_program["p0_process_orders"] = _best_time(run_p0)

    wilos_db = build_wilos_database(scale=wilos_scale)
    for pattern_id, pattern in build_patterns().items():

        def run_pattern(pattern=pattern):
            optimizer = CobraOptimizer(wilos_db, parameters)
            return optimizer.optimize(
                pattern.source, function_name=pattern.function_name
            )

        per_program[f"wilos_{pattern_id}"] = _best_time(run_pattern)

    return {
        "per_program_seconds": per_program,
        "total_seconds": sum(per_program.values()),
    }


def main() -> dict:
    rows = int(os.environ.get("BENCH_ENGINE_ROWS", str(DEFAULT_ROWS)))
    started = time.perf_counter()
    report = {
        "benchmark": "engine",
        "rows": rows,
        "executor": bench_executor(rows),
        "codegen": bench_codegen(rows),
        "prepared_point_lookup": bench_prepared_point_lookup(rows),
        "pipelined_executemany": bench_pipelined_executemany(rows),
        "async_concurrent_clients": bench_async_concurrent_clients(rows),
        "wal_overhead": bench_wal_overhead(rows),
        "fault_retry_convergence": bench_fault_retry_convergence(rows),
        "mvcc_reader_writer": bench_mvcc_reader_writer(rows),
        "admission_open_loop": bench_admission_open_loop(rows),
        "tracing_overhead": bench_tracing_overhead(rows),
        "optimizer": bench_optimizer(),
    }
    report.update(bench_sharded(rows))
    report.update(bench_parallel(rows))
    report["harness_seconds"] = time.perf_counter() - started
    out_path = os.environ.get(
        "BENCH_ENGINE_OUT", os.path.join(_REPO_ROOT, "BENCH_engine.json")
    )
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {out_path}")
    return report


if __name__ == "__main__":
    main()
