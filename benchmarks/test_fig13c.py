"""Benchmark + reproduction of Figure 13c (Experiment 3).

Slow remote network, Orders fixed at 10 000, Customers swept from 10 to
100 000.  The paper's observation: P1's time is nearly constant (the join
result does not grow with Customer cardinality), while P2's grows because it
prefetches the entire Customer table — so neither alternative wins everywhere.
"""

from conftest import record_table

from repro.experiments.figure13 import PAPER_CUSTOMER_COUNTS, run_figure13c


def test_figure13c(benchmark, fig13_scale_divisor):
    table = benchmark.pedantic(
        run_figure13c,
        kwargs={
            "scale_divisor": fig13_scale_divisor,
            "include_analytical": True,
            "customer_counts": PAPER_CUSTOMER_COUNTS,
        },
        rounds=1,
        iterations=1,
    )
    record_table(table)

    analytical = [r for r in table.as_dicts() if r["mode"] == "analytical"]
    by_customers = {r["customers"]: r for r in analytical}
    p1_low = by_customers[10]["SQL Query(P1)"]
    p1_high = by_customers[100_000]["SQL Query(P1)"]
    # P1 nearly constant across the sweep.
    assert abs(p1_high - p1_low) / p1_low < 0.10
    # P2 grows with the Customer cardinality.
    assert (
        by_customers[100_000]["Prefetching(P2)"]
        > by_customers[10]["Prefetching(P2)"] * 2
    )
    # The winner flips across the sweep, and COBRA follows it.
    assert by_customers[10]["COBRA choice"] == "Prefetching(P2)"
    assert by_customers[100_000]["COBRA choice"] == "SQL Query(P1)"
