"""Benchmark of the COBRA optimization time (Section VIII).

The paper notes optimization took under a second for every evaluated program;
this benchmark both measures the experiment harness and asserts the bound
holds for the reproduction.
"""

from conftest import record_table

from repro.experiments.opt_time import run_optimization_time


def test_optimization_time(benchmark, bench_scale):
    table = benchmark.pedantic(
        run_optimization_time,
        kwargs={"scale": min(bench_scale, 2_000)},
        rounds=1,
        iterations=1,
    )
    record_table(table)
    assert len(table.rows) == 7  # P0 plus the six Wilos patterns
    assert all(t < 1.0 for t in table.column("optimization_seconds"))
    assert all(groups > 0 for groups in table.column("dag_groups"))
