"""Benchmark + reproduction of Figure 13b (Experiment 2).

Fast local network (6 Gbps, 0.5 ms RTT), Customers fixed at 73 000, Orders
swept from 100 to 1 million.
"""

from conftest import record_table

from repro.experiments.figure13 import PAPER_ORDER_COUNTS, run_figure13b


def test_figure13b(benchmark, fig13_scale_divisor):
    table = benchmark.pedantic(
        run_figure13b,
        kwargs={
            "scale_divisor": fig13_scale_divisor,
            "include_analytical": True,
            "order_counts": PAPER_ORDER_COUNTS,
        },
        rounds=1,
        iterations=1,
    )
    record_table(table)

    analytical = [r for r in table.as_dicts() if r["mode"] == "analytical"]
    by_orders = {r["orders"]: r for r in analytical}
    # Paper shape: P2 beats P1 at 1M orders (12 s vs 16 s), but the gap is far
    # smaller than on the slow remote network of Figure 13a.
    top = by_orders[1_000_000]
    assert top["Prefetching(P2)"] < top["SQL Query(P1)"]
    gap_fast = top["SQL Query(P1)"] - top["Prefetching(P2)"]
    assert gap_fast < 60, "on a fast network the gap is seconds, not thousands"
    # Everything is orders of magnitude faster than the slow-network numbers.
    assert top["SQL Query(P1)"] < 100
