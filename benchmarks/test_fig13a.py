"""Benchmark + reproduction of Figure 13a (Experiment 1).

Slow remote network (500 kbps, 250 ms latency), Customers fixed at 73 000,
Orders swept from 100 to 1 million.  Measured rows run at reduced scale; the
analytical rows report the cost model at full paper scale.
"""

from conftest import record_table

from repro.experiments.figure13 import PAPER_ORDER_COUNTS, run_figure13a


def test_figure13a(benchmark, fig13_scale_divisor):
    table = benchmark.pedantic(
        run_figure13a,
        kwargs={
            "scale_divisor": fig13_scale_divisor,
            "include_analytical": True,
            "order_counts": PAPER_ORDER_COUNTS,
        },
        rounds=1,
        iterations=1,
    )
    record_table(table)

    analytical = [r for r in table.as_dicts() if r["mode"] == "analytical"]
    by_orders = {r["orders"]: r for r in analytical}
    # Paper shape: P1 wins at low Order cardinality, P2 wins at 1M
    # (paper: 3467 s vs 6047 s).
    assert by_orders[100]["COBRA choice"] == "SQL Query(P1)"
    assert by_orders[1_000_000]["COBRA choice"] == "Prefetching(P2)"
    assert (
        by_orders[1_000_000]["Prefetching(P2)"]
        < by_orders[1_000_000]["SQL Query(P1)"]
    )
    # COBRA always reports the time of the alternative it chose.
    for row in table.as_dicts():
        assert row["COBRA"] == min(
            row["COBRA"],
            row["Hibernate(P0)"],
            row["SQL Query(P1)"],
            row["Prefetching(P2)"],
        ) or row["COBRA"] in (
            row["Hibernate(P0)"],
            row["SQL Query(P1)"],
            row["Prefetching(P2)"],
        )
