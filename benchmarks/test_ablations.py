"""Ablation benchmarks: AF sweep, rule families, network sensitivity, dedup."""

from conftest import record_table

from repro.experiments.ablations import (
    run_af_sweep,
    run_dedup_ablation,
    run_network_sensitivity,
    run_rule_ablation,
)


def test_amortization_factor_sweep(benchmark, bench_scale):
    table = benchmark.pedantic(
        run_af_sweep, kwargs={"scale": min(bench_scale, 2_000)}, rounds=1, iterations=1
    )
    record_table(table)
    choices = table.column("chosen_strategy")
    # With a large enough AF the prefetch alternative wins.
    assert choices[-1] == "prefetch"
    # Estimated cost never increases as AF grows (prefetching only gets cheaper).
    costs = table.column("estimated_cost")
    assert all(b <= a + 1e-9 for a, b in zip(costs, costs[1:]))


def test_rule_family_ablation(benchmark, bench_scale):
    table = benchmark.pedantic(
        run_rule_ablation,
        kwargs={"scale": min(bench_scale, 2_000)},
        rounds=1,
        iterations=1,
    )
    record_table(table)
    rows = {row[0]: dict(zip(table.columns, row)) for row in table.rows}
    full = rows["all rules"]["estimated_cost"]
    assert rows["no rules (original only)"]["chosen_strategy"] == "original"
    assert full <= rows["SQL rules only (no prefetching)"]["estimated_cost"] + 1e-9
    assert full <= rows["prefetch rules only (no SQL translation)"]["estimated_cost"] + 1e-9


def test_network_sensitivity(benchmark):
    table = benchmark.pedantic(run_network_sensitivity, rounds=1, iterations=1)
    record_table(table)
    # At paper-scale cardinalities (1M orders, 73k customers) the prefetch
    # alternative wins across the whole bandwidth sweep; the estimates shrink
    # monotonically as the network gets faster.
    p1 = table.column("p1_estimate")
    assert all(b <= a + 1e-9 for a, b in zip(p1, p1[1:]))
    assert all(choice != "original" for choice in table.column("chosen"))


def test_dedup_ablation(benchmark, bench_scale):
    table = benchmark.pedantic(
        run_dedup_ablation,
        kwargs={"scale": min(bench_scale, 2_000)},
        rounds=1,
        iterations=1,
    )
    record_table(table)
    for row in table.as_dicts():
        assert row["nodes (with dedup)"] <= row["insertions (without dedup)"]


def test_dynamic_prefetch_ablation(benchmark):
    from repro.experiments.ablations import run_dynamic_prefetch_ablation

    table = benchmark.pedantic(run_dynamic_prefetch_ablation, rounds=1, iterations=1)
    record_table(table)
    rows = table.as_dicts()
    # At one access, not prefetching is best and the dynamic policy follows it.
    assert rows[0]["dynamic_s"] <= rows[0]["always_prefetch_s"] + 1e-9
    assert not rows[0]["dynamic_prefetched"]
    # At many accesses, the dynamic policy has switched to the prefetched plan
    # and is far cheaper than issuing a query per access.
    assert rows[-1]["dynamic_prefetched"]
    assert rows[-1]["dynamic_s"] < rows[-1]["never_prefetch_s"] / 2
