"""Benchmark-suite configuration.

Every benchmark registers the result tables it reproduces via
``record_table``; a terminal-summary hook prints them after the
pytest-benchmark timing table, so running::

    pytest benchmarks/ --benchmark-only

shows both how long each experiment harness takes and the actual reproduced
rows/series of the corresponding paper figure.

The scale of the experiments can be adjusted with the ``COBRA_BENCH_SCALE``
environment variable (the largest-relation row count for the Wilos study and
the divisor basis for the Figure 13 sweeps); the default keeps the whole
suite at laptop scale.
"""

from __future__ import annotations

import os

import pytest

#: Tables registered by benchmarks, printed in the terminal summary.
_RESULT_TABLES: list = []


def record_table(table) -> None:
    """Register a ResultTable for printing at the end of the run."""
    _RESULT_TABLES.append(table)


@pytest.fixture(scope="session")
def bench_scale() -> int:
    """Largest-relation scale used by the benchmark experiments."""
    return int(os.environ.get("COBRA_BENCH_SCALE", "2000"))


@pytest.fixture(scope="session")
def fig13_scale_divisor() -> int:
    """Divisor applied to the paper's Figure 13 cardinalities for measured runs."""
    return int(os.environ.get("COBRA_FIG13_DIVISOR", "200"))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _RESULT_TABLES:
        return
    terminalreporter.section("reproduced paper tables and figures")
    for table in _RESULT_TABLES:
        terminalreporter.write_line("")
        for line in table.render().splitlines():
            terminalreporter.write_line(line)
