"""Benchmark + reproduction of Figure 15 (Experiment 4, the Wilos study).

For each pattern A-F the harness optimizes the original program with the
heuristic and with COBRA (AF=1 and AF=50), executes every generated program
on the Wilos-like synthetic data (fast local network, mapping ratio 10:1,
selectivity 20%), and reports each variant's execution time as a fraction of
the original program's — the y-axis of Figure 15.
"""

from conftest import record_table

from repro.experiments.figure15 import run_figure15


def test_figure15(benchmark, bench_scale):
    table = benchmark.pedantic(
        run_figure15, kwargs={"scale": bench_scale}, rounds=1, iterations=1
    )
    record_table(table)
    rows = {row["program"]: row for row in table.as_dicts()}

    # Every rewritten variant computes the same result as the original.
    assert all(table.column("results_equal"))

    # Paper claim: the COBRA-chosen program always performs at least as well
    # as the original (small tolerance for near-ties).
    for row in rows.values():
        assert row["cobra_af50_fraction"] <= 1.1
        assert row["cobra_af1_fraction"] <= 1.1

    # Pattern A: COBRA prefetches and clearly beats both original and the
    # heuristic's iterative filtered queries.
    assert rows["P A"]["cobra_af50_choice"] == "prefetch"
    assert rows["P A"]["cobra_af50_fraction"] < 0.8

    # Pattern B: the heuristic's extra aggregate query makes it slower than
    # the original; COBRA keeps the original program.
    assert rows["P B"]["heuristic_fraction"] > 1.0
    assert rows["P B"]["cobra_af50_choice"] == "original"

    # Pattern C: full SQL translation of the nested-loops join is a huge win.
    assert rows["P C"]["heuristic_fraction"] < 0.2

    # Patterns E and F: the heuristic keeps the filtered queries while COBRA
    # prefetches — the paper's "up to 95% improvement over the heuristic".
    assert rows["P E"]["cobra_af50_fraction"] < rows["P E"]["heuristic_fraction"] * 0.3
    assert rows["P F"]["cobra_af50_fraction"] < rows["P F"]["heuristic_fraction"] * 0.3
