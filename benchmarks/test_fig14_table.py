"""Reproduction of Figure 14 (pattern categories) and Figure 16 (fragment list)."""

from conftest import record_table

from repro.experiments.figure15 import run_figure14, run_figure16


def test_figure14_categories(benchmark):
    table = benchmark.pedantic(run_figure14, rounds=1, iterations=1)
    record_table(table)
    assert [row[0] for row in table.rows] == list("ABCDEF")
    assert table.column("#") == [3, 2, 9, 7, 9, 2]
    assert sum(table.column("#")) == 32


def test_figure16_fragment_list(benchmark):
    table = benchmark.pedantic(run_figure16, rounds=1, iterations=1)
    record_table(table)
    assert len(table.rows) == 32
    locations = table.column("File Name (Line Number)")
    assert "ProjectService (1139)" in locations
    assert "ProcessService (921)" in locations
